// Package jaccard implements the weighted Jaccard similarity used by CLAIRE
// to split the training set into algorithm subsets (Algorithm 1, line 14) and
// to assign test algorithms to library configurations (Step #TT1).
//
// An algorithm's graph is summarized as a Profile with two views:
//
//   - Compute: the distribution of MAC work over compute dataflows
//     (CONV2D / CONV1D / LINEAR). The systolic array is the same silicon,
//     but the dataflow compiled onto it differs, and the paper notes that the
//     Conv1D models (GPT-2, Whisper) "are grouped separately" because of it.
//   - Kinds: the set of hardware unit/dataflow keys the algorithm exercises
//     (the binary node set of its graph).
//
// Similarity blends the weighted Jaccard over Compute — gated by the binary
// Jaccard over compute dataflows, so a CONV1D model never looks like a pure
// LINEAR model regardless of magnitudes — with the binary Jaccard over the
// full kind set. The blend weights and the merge threshold tau are ablation
// knobs (DESIGN.md, D2).
package jaccard

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/hw"
	"repro/internal/ppa"
	"repro/internal/workload"
)

// Profile summarizes an algorithm for similarity purposes.
type Profile struct {
	// Compute maps a compute dataflow key ("CONV2D", "CONV1D", "LINEAR") to
	// its share of total MACs; shares sum to 1 for any model with compute.
	Compute map[string]float64
	// Kinds is the set of unit/dataflow keys present in the graph: compute
	// dataflow keys plus activation/pooling/engine unit names.
	Kinds map[string]bool
}

// keyOf returns the kind key for a layer.
func keyOf(l workload.Layer) string {
	u := hw.UnitFor(l.Kind)
	if u == hw.SystolicArray {
		return l.Kind.String()
	}
	return u.String()
}

// ProfileOf summarizes an evaluated algorithm.
func ProfileOf(e *ppa.Eval) Profile {
	return ProfileOfModel(e.Model)
}

// ProfileOfModel summarizes an algorithm directly from its layer list (the
// profile depends only on the workload, not on the configuration it was
// evaluated on).
func ProfileOfModel(m *workload.Model) Profile {
	p := Profile{Compute: make(map[string]float64), Kinds: make(map[string]bool)}
	var macs float64
	for _, l := range m.Layers {
		p.Kinds[keyOf(l)] = true
		if l.Kind.IsCompute() {
			w := float64(l.MACs())
			p.Compute[l.Kind.String()] += w
			macs += w
		}
	}
	if macs > 0 {
		for k := range p.Compute {
			p.Compute[k] /= macs
		}
	}
	return p
}

// Weighted returns the weighted Jaccard similarity sum(min)/sum(max) between
// two weight maps. Two empty maps are identical (similarity 1).
func Weighted(a, b map[string]float64) float64 {
	var mins, maxs float64
	for k, wa := range a {
		wb := b[k]
		if wa < wb {
			mins += wa
			maxs += wb
		} else {
			mins += wb
			maxs += wa
		}
	}
	for k, wb := range b {
		if _, ok := a[k]; !ok {
			maxs += wb
		}
	}
	if maxs == 0 {
		return 1
	}
	return mins / maxs
}

// Binary returns the set Jaccard |a and b| / |a or b|. Two empty sets are
// identical (similarity 1).
func Binary(a, b map[string]bool) float64 {
	inter, union := 0, 0
	for k := range a {
		union++
		if b[k] {
			inter++
		}
	}
	for k := range b {
		if !a[k] {
			union++
		}
	}
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// Options controls subset formation and assignment.
type Options struct {
	// Tau is the merge threshold: clusters merge only while their average
	// pairwise similarity is at least Tau.
	Tau float64
	// ComputeWeight scales the compute-dataflow term; KindWeight scales the
	// kind-set term. They normally sum to 1.
	ComputeWeight float64
	KindWeight    float64
}

// DefaultOptions are the calibrated values used throughout the reproduction:
// they recover five training subsets with the CNN subset holding six
// algorithms, mirroring Table III.
func DefaultOptions() Options {
	return Options{Tau: 0.42, ComputeWeight: 0.6, KindWeight: 0.4}
}

// computeKinds extracts the compute dataflow keys from a profile.
func computeKinds(p Profile) map[string]bool {
	out := make(map[string]bool, len(p.Compute))
	for k := range p.Compute {
		out[k] = true
	}
	return out
}

// Similarity returns the blended similarity of two profiles:
//
//	ComputeWeight * Jw(compute shares) * Jb(compute kinds) + KindWeight * Jb(all kinds)
//
// The multiplicative gate means a dataflow-kind mismatch (CONV1D vs LINEAR)
// suppresses the compute term even when magnitudes align.
func (o Options) Similarity(a, b Profile) float64 {
	cw := Weighted(a.Compute, b.Compute) * Binary(computeKinds(a), computeKinds(b))
	return o.ComputeWeight*cw + o.KindWeight*Binary(a.Kinds, b.Kinds)
}

// Partition groups profile indices into subsets by deterministic
// agglomerative average-linkage clustering: repeatedly merge the two clusters
// with the highest average pairwise similarity while it is at least Tau.
// Returned subsets are ordered by smallest member index; members ascend.
func Partition(profiles []Profile, o Options) [][]int {
	if len(profiles) == 0 {
		return nil
	}
	clusters := make([][]int, len(profiles))
	for i := range profiles {
		clusters[i] = []int{i}
	}
	sim := func(ca, cb []int) float64 {
		var s float64
		for _, i := range ca {
			for _, j := range cb {
				s += o.Similarity(profiles[i], profiles[j])
			}
		}
		return s / float64(len(ca)*len(cb))
	}
	for len(clusters) > 1 {
		bi, bj, best := -1, -1, o.Tau
		for i := 0; i < len(clusters); i++ {
			for j := i + 1; j < len(clusters); j++ {
				if s := sim(clusters[i], clusters[j]); s > best {
					bi, bj, best = i, j, s
				}
			}
		}
		if bi < 0 {
			break
		}
		merged := append(append([]int{}, clusters[bi]...), clusters[bj]...)
		sort.Ints(merged)
		rest := make([][]int, 0, len(clusters)-1)
		for k, c := range clusters {
			if k != bi && k != bj {
				rest = append(rest, c)
			}
		}
		clusters = append(rest, merged)
	}
	sort.Slice(clusters, func(i, j int) bool { return clusters[i][0] < clusters[j][0] })
	return clusters
}

// Centroid merges member profiles into a subset representative: compute
// shares are averaged and kinds are unioned (the union is exactly the unit
// set of the subset's library configuration).
func Centroid(profiles []Profile, members []int) Profile {
	c := Profile{Compute: make(map[string]float64), Kinds: make(map[string]bool)}
	if len(members) == 0 {
		return c
	}
	for _, i := range members {
		for k, w := range profiles[i].Compute {
			c.Compute[k] += w
		}
		for k := range profiles[i].Kinds {
			c.Kinds[k] = true
		}
	}
	for k := range c.Compute {
		c.Compute[k] /= float64(len(members))
	}
	return c
}

// Assign returns the index of the representative profile most similar to p
// (Step #TT1) along with the similarity. reps must be non-empty; ties break
// toward the lowest index.
func Assign(p Profile, reps []Profile, o Options) (int, float64) {
	if len(reps) == 0 {
		panic("jaccard: Assign with no representatives")
	}
	best, bestSim := 0, -1.0
	for i, r := range reps {
		if s := o.Similarity(p, r); s > bestSim {
			best, bestSim = i, s
		}
	}
	return best, bestSim
}

// String renders the profile deterministically.
func (p Profile) String() string {
	ck := make([]string, 0, len(p.Compute))
	for k := range p.Compute {
		ck = append(ck, k)
	}
	sort.Strings(ck)
	var sb strings.Builder
	sb.WriteString("compute{")
	for i, k := range ck {
		if i > 0 {
			sb.WriteString(" ")
		}
		fmt.Fprintf(&sb, "%s:%.3f", k, p.Compute[k])
	}
	sb.WriteString("} kinds{")
	kk := make([]string, 0, len(p.Kinds))
	for k := range p.Kinds {
		kk = append(kk, k)
	}
	sort.Strings(kk)
	sb.WriteString(strings.Join(kk, " "))
	sb.WriteString("}")
	return sb.String()
}
