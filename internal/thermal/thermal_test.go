package thermal

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Default()
	bad.RthCPerWCM2 = 0
	if bad.Validate() == nil {
		t.Error("zero Rth should fail")
	}
	bad = Default()
	bad.CouplingDecayPerHop = 1.5
	if bad.Validate() == nil {
		t.Error("decay > 1 should fail")
	}
}

func TestSingleSourceTemperature(t *testing.T) {
	m := Default()
	// One 100 mm^2 die at 25 W: Rth = 0.8/(1 cm^2) = 0.8 C/W -> +20 C rise.
	ts, err := m.Temperatures([]Source{{PowerW: 25, AreaMM2: 100, Slot: 0}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := m.AmbientC + 25*0.8
	if math.Abs(ts[0]-want) > 1e-9 {
		t.Errorf("temperature = %v, want %v", ts[0], want)
	}
}

func TestCouplingDecaysWithDistance(t *testing.T) {
	m := Default()
	mk := func(slotB int) float64 {
		ts, err := m.Temperatures([]Source{
			{PowerW: 0.001, AreaMM2: 50, Slot: 0},
			{PowerW: 40, AreaMM2: 50, Slot: slotB},
		}, 4)
		if err != nil {
			t.Fatal(err)
		}
		return ts[0]
	}
	near, far := mk(1), mk(3)
	if near <= far {
		t.Errorf("coupling should decay with distance: near %v, far %v", near, far)
	}
	if near <= m.AmbientC {
		t.Error("neighbor heating missing")
	}
}

func TestHotterNeighborsRaisePeak(t *testing.T) {
	m := Default()
	alone, err := m.Peak([]Source{{PowerW: 30, AreaMM2: 50, Slot: 0}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	crowded, err := m.Peak([]Source{
		{PowerW: 30, AreaMM2: 50, Slot: 0},
		{PowerW: 30, AreaMM2: 50, Slot: 1},
		{PowerW: 30, AreaMM2: 50, Slot: 2},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if crowded <= alone {
		t.Errorf("crowded package peak %v not above isolated %v", crowded, alone)
	}
}

func TestMaxPowerDensity(t *testing.T) {
	m := Default()
	// The PD that drives a 50 mm^2 die to 105 C.
	pd := m.MaxPowerDensity(50, 105)
	if pd <= 0 {
		t.Fatal("expected positive PD limit")
	}
	// Check consistency: running exactly at that PD reaches the limit.
	power := pd * 50
	ts, err := m.Temperatures([]Source{{PowerW: power, AreaMM2: 50, Slot: 0}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ts[0]-105) > 1e-6 {
		t.Errorf("at PD limit the die reads %v C, want 105", ts[0])
	}
	// The paper's PD_limit of 0.8 W/mm^2 should be of the same order as the
	// physical limit for its chiplet sizes at a 105 C budget.
	if pd < 0.2 || pd > 5 {
		t.Errorf("PD limit %v W/mm^2 implausible for datacenter cooling", pd)
	}
	if m.MaxPowerDensity(0, 105) != 0 || m.MaxPowerDensity(50, m.AmbientC) != 0 {
		t.Error("degenerate inputs should give 0")
	}
}

func TestTemperatureErrors(t *testing.T) {
	m := Default()
	if _, err := m.Temperatures([]Source{{PowerW: 1, AreaMM2: 0, Slot: 0}}, 1); err == nil {
		t.Error("zero area should fail")
	}
	if _, err := m.Temperatures([]Source{{PowerW: -1, AreaMM2: 10, Slot: 0}}, 1); err == nil {
		t.Error("negative power should fail")
	}
	if _, err := m.Temperatures(nil, 0); err == nil {
		t.Error("bad grid should fail")
	}
	bad := Model{RthCPerWCM2: -1}
	if _, err := bad.Peak(nil, 1); err == nil {
		t.Error("invalid model should fail")
	}
}

// TestQuickMonotoneInPower: more power never cools any die.
func TestQuickMonotoneInPower(t *testing.T) {
	m := Default()
	f := func(p1, p2 uint8) bool {
		lo := float64(p1 % 50)
		hi := lo + float64(p2%50) + 1
		a, err1 := m.Peak([]Source{{PowerW: lo, AreaMM2: 40, Slot: 0}}, 1)
		b, err2 := m.Peak([]Source{{PowerW: hi, AreaMM2: 40, Slot: 0}}, 1)
		return err1 == nil && err2 == nil && b > a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
