// Package thermal estimates steady-state junction temperatures for a 2.5-D
// chiplet package. The paper's Input #4 imposes a power-density limit "to
// manage chip temperature"; this package closes that loop with a compact
// physical model so the limit can be checked against an actual temperature
// budget instead of a proxy.
//
// Model: each chiplet is a uniform heat source dissipating through its own
// junction-to-ambient resistance (scaling inversely with die area — bigger
// dies spread heat over more heatsink) plus a lateral coupling term from
// every other chiplet that decays exponentially with the separation of their
// package slots. This superposition-of-sources form is the standard compact
// model for multi-die packages and is deliberately conservative.
package thermal

import (
	"fmt"
	"math"
)

// Model holds the package thermal parameters.
type Model struct {
	// AmbientC is the ambient (or cold-plate) temperature.
	AmbientC float64
	// RthCPerWCM2 is the junction-to-ambient resistance of 1 cm^2 of die
	// under the package's cooling solution; a chiplet of area A gets
	// RthCPerWCM2 / (A in cm^2).
	RthCPerWCM2 float64
	// CouplingCPerW is the lateral heating contributed per watt of a
	// neighboring chiplet at zero separation.
	CouplingCPerW float64
	// CouplingDecayPerHop attenuates the coupling per package-grid hop.
	CouplingDecayPerHop float64
}

// Default returns a forced-air datacenter cooling calibration: a 1 cm^2 die
// dissipating 50 W rises ~40 C above ambient, and adjacent chiplets couple
// at a few degrees per watt with fast decay.
func Default() Model {
	return Model{
		AmbientC:            45,
		RthCPerWCM2:         0.8,
		CouplingCPerW:       0.12,
		CouplingDecayPerHop: 0.5,
	}
}

// Validate checks parameter sanity.
func (m Model) Validate() error {
	if m.RthCPerWCM2 <= 0 {
		return fmt.Errorf("thermal: non-positive thermal resistance")
	}
	if m.CouplingCPerW < 0 || m.CouplingDecayPerHop <= 0 || m.CouplingDecayPerHop > 1 {
		return fmt.Errorf("thermal: invalid coupling parameters")
	}
	return nil
}

// Source is one chiplet as a heat source.
type Source struct {
	PowerW  float64
	AreaMM2 float64
	Slot    int // package-grid slot (Manhattan distance defines separation)
}

// manhattan computes slot distance on a near-square grid of the given width.
func manhattan(a, b, w int) int {
	ax, ay := a%w, a/w
	bx, by := b%w, b/w
	dx, dy := ax-bx, ay-by
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// Temperatures returns the steady-state junction temperature of each chiplet
// given the package-grid width used for slot coordinates.
func (m Model) Temperatures(sources []Source, gridW int) ([]float64, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if gridW < 1 {
		return nil, fmt.Errorf("thermal: grid width %d", gridW)
	}
	out := make([]float64, len(sources))
	for i, s := range sources {
		if s.AreaMM2 <= 0 {
			return nil, fmt.Errorf("thermal: source %d has area %v", i, s.AreaMM2)
		}
		if s.PowerW < 0 {
			return nil, fmt.Errorf("thermal: source %d has power %v", i, s.PowerW)
		}
		rth := m.RthCPerWCM2 / (s.AreaMM2 / 100)
		t := m.AmbientC + s.PowerW*rth
		for j, o := range sources {
			if i == j || o.PowerW <= 0 {
				continue
			}
			d := manhattan(s.Slot, o.Slot, gridW)
			t += o.PowerW * m.CouplingCPerW * math.Pow(m.CouplingDecayPerHop, float64(d))
		}
		out[i] = t
	}
	return out, nil
}

// Peak returns the hottest junction temperature in the package.
func (m Model) Peak(sources []Source, gridW int) (float64, error) {
	ts, err := m.Temperatures(sources, gridW)
	if err != nil {
		return 0, err
	}
	peak := m.AmbientC
	for _, t := range ts {
		if t > peak {
			peak = t
		}
	}
	return peak, nil
}

// MaxPowerDensity returns the uniform power density (W/mm^2) at which a die
// of the given area reaches the junction limit with no neighbors — the
// physical origin of the paper's PD_limit constraint.
func (m Model) MaxPowerDensity(areaMM2, junctionLimitC float64) float64 {
	if areaMM2 <= 0 || junctionLimitC <= m.AmbientC {
		return 0
	}
	rth := m.RthCPerWCM2 / (areaMM2 / 100)
	maxPower := (junctionLimitC - m.AmbientC) / rth
	return maxPower / areaMM2
}
