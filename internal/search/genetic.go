package search

import (
	"context"

	"repro/internal/dse"
	"repro/internal/hw"
	"repro/internal/workload"
)

// genetic is a steady-state genetic algorithm over coordinate vectors: each
// generation breeds a batch of offspring (tournament parent selection,
// uniform per-axis crossover, ±1-step mutation), scores the batch in
// parallel through the evaluator pool, then — sequentially, on the
// coordinator — replaces the worst population member with any offspring that
// beats it. Offspring landing on non-admitted coordinate tuples (mixes the
// budgets filtered out) are repaired by extra mutation, falling back to a
// random index, so the budget is never spent proposing nothing.
type genetic struct {
	eng engine
}

// Name returns "genetic".
func (g *genetic) Name() string { return "genetic" }

// Run executes the genetic search.
func (g *genetic) Run(ctx context.Context, models []*workload.Model, space hw.DesignSpace,
	cons dse.Constraints, budget int) (dse.Result, Trace, error) {
	return g.eng.run(ctx, models, space, cons, budget, g.evolve)
}

func (g *genetic) evolve(st *state) error {
	p := g.eng.spec.Genetic
	// Found the population on everything already scored (the corner and
	// random seeds), topping up with random points until Pop members or the
	// budget runs dry. Population entries are slots; membership is tracked
	// by point index so one point never occupies two entries.
	pop := make([]int, 0, p.Pop)
	inPop := make(map[int]bool, p.Pop)
	for s := range st.pts {
		if len(pop) >= p.Pop {
			break
		}
		if st.errs[s] == nil && !inPop[st.pts[s]] {
			pop = append(pop, s)
			inPop[st.pts[s]] = true
		}
	}
	batch := make([]int, 0, p.Batch)
	for len(pop) < p.Pop && !st.exhausted() {
		batch = batch[:0]
		for j := 0; j < p.Batch && len(pop)+len(batch) < p.Pop; j++ {
			batch = append(batch, st.rng.Intn(st.n))
		}
		slots := st.visit(batch)
		if st.err != nil {
			return st.err
		}
		for _, s := range slots {
			if s >= 0 && !inPop[st.pts[s]] && len(pop) < p.Pop {
				pop = append(pop, s)
				inPop[st.pts[s]] = true
			}
		}
	}
	if len(pop) == 0 {
		return nil
	}
	stall := 0
	for !st.exhausted() {
		batch = batch[:0]
		for j := 0; j < p.Batch; j++ {
			batch = append(batch, g.offspring(st, pop))
		}
		// A converged population can breed only already-scored offspring;
		// those are cache hits, the budget stops moving, and the loop would
		// spin forever. After a few stalled generations inject a random
		// unvisited immigrant, which is guaranteed to consume budget.
		if stall >= 3 {
			stall = 0
			batch[0] = st.randomUnvisited()
		}
		before := len(st.pts)
		slots := st.visit(batch)
		if st.err != nil {
			return st.err
		}
		if len(st.pts) == before {
			stall++
		} else {
			stall = 0
		}
		for _, s := range slots {
			if s < 0 || inPop[st.pts[s]] {
				continue
			}
			worst, wf := -1, 0.0
			for i, ps := range pop {
				if f := st.fitness(ps); worst < 0 || f > wf {
					worst, wf = i, f
				}
			}
			if st.fitness(s) < wf {
				delete(inPop, st.pts[pop[worst]])
				pop[worst] = s
				inPop[st.pts[s]] = true
			}
		}
	}
	return nil
}

// tournament returns the population slot with the best fitness among Tourn
// uniformly drawn members.
func (g *genetic) tournament(st *state, pop []int) int {
	k := g.eng.spec.Genetic.Tourn
	best, bf := -1, 0.0
	for i := 0; i < k; i++ {
		s := pop[st.rng.Intn(len(pop))]
		if f := st.fitness(s); best < 0 || f < bf {
			best, bf = s, f
		}
	}
	return best
}

// offspring proposes one child point index from the population.
func (g *genetic) offspring(st *state, pop []int) int {
	v := st.view
	if v == nil {
		return st.rng.Intn(st.n)
	}
	p := g.eng.spec.Genetic
	p1 := g.tournament(st, pop)
	p2 := g.tournament(st, pop)
	c1 := make([]int, v.dims)
	c2 := make([]int, v.dims)
	v.coordsOf(st.pts[p1], c1)
	v.coordsOf(st.pts[p2], c2)
	child := c1
	if st.rng.Float64() < p.Cross {
		for d := 0; d < v.dims; d++ {
			if st.rng.Intn(2) == 1 {
				child[d] = c2[d]
			}
		}
	}
	for d := 0; d < v.dims; d++ {
		if st.rng.Float64() < p.Mut {
			if st.rng.Intn(2) == 0 {
				if child[d] > 0 {
					child[d]--
				}
			} else if child[d] < v.card[d]-1 {
				child[d]++
			}
		}
	}
	if idx := v.indexOf(child); idx >= 0 {
		return idx
	}
	// Repair non-admitted tuples (budget-filtered mixes) with extra random
	// single-axis steps before giving up on the lineage.
	for try := 0; try < 2*v.dims; try++ {
		d := st.rng.Intn(v.dims)
		if st.rng.Intn(2) == 0 {
			if child[d] > 0 {
				child[d]--
			}
		} else if child[d] < v.card[d]-1 {
			child[d]++
		}
		if idx := v.indexOf(child); idx >= 0 {
			return idx
		}
	}
	return st.rng.Intn(st.n)
}
