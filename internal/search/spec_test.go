package search

import "testing"

// TestParseSpecDefaults checks bare kinds parse to defaults.
func TestParseSpecDefaults(t *testing.T) {
	for _, s := range []string{"anneal", " Anneal ", "genetic", "GENETIC"} {
		spec, err := ParseSpec(s)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		if spec.Anneal != DefaultAnnealParams() || spec.Genetic != DefaultGeneticParams() {
			t.Errorf("%q: parameters not defaulted: %+v", s, spec)
		}
		if err := spec.Validate(); err != nil {
			t.Errorf("%q: default spec fails validation: %v", s, err)
		}
	}
}

// TestParseSpecParams checks key=value overrides land on the right fields.
func TestParseSpecParams(t *testing.T) {
	spec, err := ParseSpec("genetic:pop=64,mut=0.1,cx=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Genetic.Pop != 64 || spec.Genetic.Mut != 0.1 || spec.Genetic.Cross != 0.5 {
		t.Errorf("overrides not applied: %+v", spec.Genetic)
	}
	if spec.Genetic.Batch != DefaultGeneticParams().Batch {
		t.Errorf("unspecified key lost its default: %+v", spec.Genetic)
	}
	spec, err = ParseSpec("anneal:restarts=2,t0=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Anneal.Restarts != 2 || spec.Anneal.T0 != 0.5 {
		t.Errorf("overrides not applied: %+v", spec.Anneal)
	}
}

// TestParseSpecErrors checks malformed specs are rejected.
func TestParseSpecErrors(t *testing.T) {
	for _, s := range []string{
		"", "tabu", "anneal:", "anneal:restarts", "anneal:restarts=0",
		"anneal:pop=4", "genetic:mut=1.5", "genetic:pop=1", "anneal:t0=nan",
		"genetic:tourn=-1", "anneal:batch=99999",
	} {
		if _, err := ParseSpec(s); err == nil {
			t.Errorf("%q: expected a parse error", s)
		}
	}
}

// TestSpecStringRoundTrip checks the canonical rendering reparses to an
// equal spec — the property FuzzParseSearchSpec generalizes.
func TestSpecStringRoundTrip(t *testing.T) {
	for _, s := range []string{"anneal", "genetic", "anneal:t1=0.0001", "genetic:pop=100,tourn=5"} {
		spec, err := ParseSpec(s)
		if err != nil {
			t.Fatal(err)
		}
		again, err := ParseSpec(spec.String())
		if err != nil {
			t.Fatalf("%q: canonical form %q does not reparse: %v", s, spec.String(), err)
		}
		if again != spec {
			t.Errorf("%q: round trip changed the spec:\nfirst:  %+v\nsecond: %+v", s, spec, again)
		}
	}
}
