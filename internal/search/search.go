package search

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dse"
	"repro/internal/eval"
	"repro/internal/hw"
	"repro/internal/ppa"
	"repro/internal/workload"
)

// Optimizer is a budgeted search strategy over a design space. Run returns a
// dse.Result bit-compatible with dse.ExploreSpace restricted to the points
// the search visited (same dominance/slack selection discipline, same
// materialized winner config shape), plus a Trace of how the budget was
// spent. The budget is in summary-evaluation units (one point × one model);
// repeat visits of an already-scored point are cache hits and cost nothing.
// When budget >= Len(space) × len(models), Run falls back to the exhaustive
// streaming sweep (with corner-bound early exit where the space supports
// it). budget <= 0 selects the default: 5% of the exhaustive count, floored
// at 64 points.
type Optimizer interface {
	// Name is the strategy name ("anneal", "genetic").
	Name() string
	// Run executes the search. Deterministic for a fixed seed at any
	// evaluator worker count.
	Run(ctx context.Context, models []*workload.Model, space hw.DesignSpace,
		cons dse.Constraints, budget int) (dse.Result, Trace, error)
}

// Options configures an Optimizer independent of its strategy parameters.
type Options struct {
	// Seed seeds the strategy's random stream; runs with equal seeds are
	// byte-identical.
	Seed int64
	// Evaluator is the scoring engine (nil: the shared default).
	Evaluator *eval.Evaluator
	// Fidelity selects the evaluation pipeline (nil: analytical). Under the
	// staged mode the run's winner comes from re-scoring the visited-set
	// dominance frontier with the physical models (dse.FidelityOptions.
	// RefineSelect); stage-1 evaluations run outside the summary budget and
	// are reported in Trace.RefinedPoints.
	Fidelity *dse.FidelityOptions
}

// Improvement records one strictly better incumbent during a search: how
// many evaluations had been spent when it was found, and its selection area.
type Improvement struct {
	// Evals is the cumulative summary-evaluation count when the point
	// became the incumbent.
	Evals int
	// AreaMM2 is the incumbent's summed per-model selection area.
	AreaMM2 float64
	// Point renders the incumbent's design point.
	Point string
}

// Trace reports how a search run spent its budget — the observability behind
// the optimality-gap and evaluations-per-win metrics clairebench gates.
type Trace struct {
	// Strategy is the strategy that ran ("anneal", "genetic", or
	// "exhaustive" for the fallback).
	Strategy string
	// Seed is the seed the run used.
	Seed int64
	// Budget is the evaluation budget after defaulting.
	Budget int
	// Evaluations counts summary evaluations consumed (unique visited
	// points × models): the evaluator-miss bound the budget caps.
	Evaluations int
	// CacheHits counts repeat point visits served from the run's memo —
	// free under the budget.
	CacheHits int
	// UniquePoints is the number of distinct space points scored.
	UniquePoints int
	// EvalsToWin is the cumulative evaluation count at the moment the
	// returned winner was first scored — the evaluations-per-win metric.
	EvalsToWin int
	// BestAreaMM2 is the winner's summed per-model selection area (the
	// quantity optimality gap compares against the exhaustive optimum).
	BestAreaMM2 float64
	// Improvements is the incumbent trajectory in evaluation order.
	Improvements []Improvement
	// Fallback reports that the budget covered the space and the exhaustive
	// sweep ran instead; SkippedPoints is its early-exit saving.
	Fallback      bool
	SkippedPoints int
	// RefinedPoints and ThermalRejected report staged fidelity's stage-1
	// work: frontier candidates re-scored with the physical models, and how
	// many the junction-temperature check rejected. Zero under analytical.
	RefinedPoints   int
	ThermalRejected int
}

// New builds the Optimizer for a spec. The spec must validate.
func New(spec Spec, o Options) (Optimizer, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	eng := engine{spec: spec, opts: o}
	switch spec.Kind {
	case "anneal":
		return &annealer{eng}, nil
	default:
		return &genetic{eng}, nil
	}
}

// engine is the strategy-independent half of a run: validation, budget
// accounting, the exhaustive fallback, scoring, selection and
// materialization.
type engine struct {
	spec Spec
	opts Options
}

// run drives one search: it builds the shared state, seeds it with corner
// and random points, hands control to the strategy, then materializes the
// selector's winner.
func (g *engine) run(ctx context.Context, models []*workload.Model, space hw.DesignSpace,
	cons dse.Constraints, budget int, strategy func(*state) error) (dse.Result, Trace, error) {
	if len(models) == 0 {
		return dse.Result{}, Trace{}, fmt.Errorf("search: no models")
	}
	if space == nil || space.Len() == 0 {
		return dse.Result{}, Trace{}, fmt.Errorf("search: empty design space")
	}
	if err := cons.Validate(); err != nil {
		return dse.Result{}, Trace{}, err
	}
	ev := g.opts.Evaluator
	if ev == nil {
		ev = eval.Shared()
	}
	n, nm := space.Len(), len(models)
	if budget <= 0 {
		budget = n * nm / 20
		if min := 64 * nm; budget < min {
			budget = min
		}
	}
	if budget >= n*nm {
		return g.fallback(ctx, models, space, cons, ev)
	}
	if min := 3 * nm; budget < min {
		return dse.Result{}, Trace{}, fmt.Errorf("search: budget %d too small for %d models (want >= %d)", budget, nm, min)
	}

	st := newState(ctx, ev, space, models, cons, g.opts.Seed, budget)
	st.fid = g.opts.Fidelity
	st.visit(st.seedPoints())
	if st.err == nil {
		st.calibrate()
	}
	if st.err == nil {
		if err := strategy(st); err != nil {
			return dse.Result{}, st.trace(g.spec.Kind), err
		}
	}
	if st.err != nil {
		return dse.Result{}, st.trace(g.spec.Kind), st.err
	}
	if err := ctx.Err(); err != nil {
		return dse.Result{}, st.trace(g.spec.Kind), err
	}
	return st.finish(g.spec.Kind)
}

// fallback runs the exhaustive streaming sweep with early exit — the path
// taken when the budget covers the whole space.
func (g *engine) fallback(ctx context.Context, models []*workload.Model, space hw.DesignSpace,
	cons dse.Constraints, ev *eval.Evaluator) (dse.Result, Trace, error) {
	var stats dse.ExploreStats
	// EarlyExit is safe to request unconditionally: the sweep disables it
	// itself under staged fidelity (the frontier of a truncated scan is not
	// the full-space frontier).
	res, err := dse.ExploreSpaceCtx(ctx, models, space, cons, ev,
		&dse.ExploreOptions{EarlyExit: true, Stats: &stats, Fidelity: g.opts.Fidelity})
	if err != nil {
		return dse.Result{}, Trace{Strategy: "exhaustive", Fallback: true}, err
	}
	scanned := stats.Points - stats.SkippedPoints
	tr := Trace{
		Strategy:        "exhaustive",
		Seed:            g.opts.Seed,
		Budget:          stats.Points * stats.Models,
		Evaluations:     scanned * stats.Models,
		UniquePoints:    scanned,
		EvalsToWin:      scanned * stats.Models,
		Fallback:        true,
		SkippedPoints:   stats.SkippedPoints,
		RefinedPoints:   stats.RefinedPoints,
		ThermalRejected: stats.ThermalRejected,
	}
	// The sweep's selection area (summed per-model template areas) for the
	// winner, recomputed so gap metrics compare like with like. With
	// caching on these are hits; without, nm closed-form kernel runs.
	area := 0.0
	for _, m := range models {
		c := hw.NewConfig(hw.Point{}, []*workload.Model{m})
		c.Cat = hw.CatalogueOf(space)
		c.Point = res.Config.Point
		s, serr := ev.EvaluateSummary(m, c, 1)
		if serr != nil {
			return dse.Result{}, tr, serr
		}
		area += s.AreaMM2
	}
	tr.BestAreaMM2 = area
	return res, tr, nil
}

// state is the shared per-run search state: the scored-point memo (slots),
// the budget ledger, the dse.Selector replaying the sweep's selection
// discipline, and the coordinator-owned RNG. Scoring fans out over the
// evaluator's worker pool; every decision that touches the RNG or the
// selector happens on the coordinator in deterministic slot order, which is
// what makes runs byte-identical at any worker count.
type state struct {
	ctx    context.Context
	ev     *eval.Evaluator
	space  hw.DesignSpace
	view   *coordView
	models []*workload.Model
	cons   dse.Constraints
	tmpl   []hw.Config
	sel    *dse.Selector
	rng    *rand.Rand
	fid    *dse.FidelityOptions
	n, nm  int

	seed    int64
	budget0 int // the budget as given (after defaulting)
	budget  int // remaining summary evaluations (nm reserved for materialization)
	evals   int // consumed summary evaluations
	hits    int // repeat-visit memo hits

	slots  map[int]int // point index -> slot
	pts    []int       // slot -> point index
	areas  []float64   // slot -> summed per-model area
	lats   []float64   // slot*nm latency rows
	static []bool      // slot*nm per-model static feasibility
	evalAt []int       // slot -> cumulative evals when scored
	errs   []error     // slot -> scoring error (nil normally)
	err    error       // first error in slot order

	improvements []Improvement
	lastBest     int

	slotScratch  []int
	coordScratch []int
}

func newState(ctx context.Context, ev *eval.Evaluator, space hw.DesignSpace,
	models []*workload.Model, cons dse.Constraints, seed int64, budget int) *state {
	nm := len(models)
	cat := hw.CatalogueOf(space)
	tmpl := make([]hw.Config, nm)
	for i, m := range models {
		tmpl[i] = hw.NewConfig(hw.Point{}, []*workload.Model{m})
		tmpl[i].Cat = cat
	}
	st := &state{
		ctx: ctx, ev: ev, space: space, view: newCoordView(space),
		models: models, cons: cons, tmpl: tmpl,
		sel: dse.NewSelector(nm, cons),
		rng: rand.New(rand.NewSource(seed)),
		n:   space.Len(), nm: nm,
		seed:    seed,
		budget0: budget,
		// Reserve nm evaluations for winner materialization: the final
		// union-kind config is a fresh cache key, so without the reserve
		// the evaluator-miss count could exceed the budget.
		budget:   budget - nm,
		slots:    make(map[int]int, budget/nm+1),
		lastBest: -1,
	}
	if st.view != nil {
		st.coordScratch = make([]int, st.view.dims)
	}
	return st
}

// exhausted reports whether the strategy loop should stop: budget spent,
// space fully visited, error, or context cancelled.
func (st *state) exhausted() bool {
	return st.err != nil || st.budget < st.nm || len(st.pts) >= st.n || st.ctx.Err() != nil
}

// visit scores a batch of candidate point indices and returns one slot per
// candidate, aligned: already-scored points resolve to their existing slot
// (a cache hit, free under the budget), new points are scored in parallel
// through the evaluator, and candidates past the budget resolve to -1. New
// results are fed to the selector in slot order on the coordinator.
func (st *state) visit(cands []int) []int {
	st.slotScratch = st.slotScratch[:0]
	newStart := len(st.pts)
	for _, k := range cands {
		if s, ok := st.slots[k]; ok {
			st.hits++
			st.slotScratch = append(st.slotScratch, s)
			continue
		}
		if st.budget < st.nm {
			st.slotScratch = append(st.slotScratch, -1)
			continue
		}
		s := len(st.pts)
		st.slots[k] = s
		st.pts = append(st.pts, k)
		st.areas = append(st.areas, 0)
		st.evalAt = append(st.evalAt, 0)
		st.errs = append(st.errs, nil)
		for i := 0; i < st.nm; i++ {
			st.lats = append(st.lats, 0)
			st.static = append(st.static, false)
		}
		st.budget -= st.nm
		st.slotScratch = append(st.slotScratch, s)
	}
	nNew := len(st.pts) - newStart
	if nNew == 0 {
		return st.slotScratch
	}
	st.ev.ForEach(nNew, func(j int) {
		s := newStart + j
		pt := st.space.At(st.pts[s])
		area := 0.0
		for i, m := range st.models {
			c := st.tmpl[i]
			c.Point = pt
			sum, err := st.ev.EvaluateSummary(m, c, 1)
			if err != nil {
				st.errs[s] = err
				return
			}
			st.lats[s*st.nm+i] = sum.LatencyS
			st.static[s*st.nm+i] = st.cons.MeetsStatic(sum.AreaMM2, sum.PowerDensity())
			area += sum.AreaMM2
		}
		st.areas[s] = area
	})
	st.evals += nNew * st.nm
	for j := 0; j < nNew; j++ {
		s := newStart + j
		if st.errs[s] != nil {
			if st.err == nil {
				st.err = st.errs[s]
			}
			continue
		}
		st.sel.Observe(st.pts[s], st.areas[s], st.lats[s*st.nm:(s+1)*st.nm], st.static[s*st.nm:(s+1)*st.nm])
		st.evalAt[s] = st.evals
	}
	if idx, area, ok := st.sel.Best(); ok && idx != st.lastBest {
		st.lastBest = idx
		st.improvements = append(st.improvements, Improvement{
			Evals: st.evals, AreaMM2: area, Point: fmt.Sprintf("%+v", st.space.At(idx)),
		})
	}
	return st.slotScratch
}

// fitness scores a slot for strategy-internal comparisons: its selection
// area inflated by a penalty for every model that is statically infeasible
// or over latency slack against the current (monotonically tightening)
// reference. Feasible points compare purely on area — the same objective
// selection minimizes — while infeasible ones stay ranked, giving the
// strategies a gradient toward feasibility.
func (st *state) fitness(s int) float64 {
	area := st.areas[s]
	ref := st.sel.BestLatencies()
	slack := st.cons.LatencySlack
	pen := 0.0
	for i := 0; i < st.nm; i++ {
		if !st.static[s*st.nm+i] {
			pen += 1
			continue
		}
		r := ref[i]
		if math.IsInf(r, 1) {
			continue
		}
		limit := (1 + slack) * r
		if l := st.lats[s*st.nm+i]; l > limit && limit > 0 {
			pen += l/limit - 1
		}
	}
	return area * (1 + pen)
}

// bestByFitness returns the visited slot with minimal fitness (ties to the
// lower slot), or -1 when nothing is scored.
func (st *state) bestByFitness() int {
	best, bf := -1, math.Inf(1)
	for s := range st.pts {
		if st.errs[s] != nil {
			continue
		}
		if f := st.fitness(s); f < bf {
			best, bf = s, f
		}
	}
	return best
}

// seedPoints proposes the initial candidate set: the space's coordinate
// corners (all-max — the latency-reference calibrators — all-min, and an
// axis-0 sweep against max counts, mirroring hw.CornerSpace's latency
// corners), topped up with random indices. Invalid corner tuples (budget-
// filtered mixes) are skipped.
func (st *state) seedPoints() []int {
	var idxs []int
	seen := make(map[int]bool)
	add := func(k int) {
		if k >= 0 && k < st.n && !seen[k] {
			seen[k] = true
			idxs = append(idxs, k)
		}
	}
	target := 8
	// Latency corners first: visiting every per-model minimum-latency point
	// calibrates the selector's latency reference to the exhaustive sweep's,
	// which keeps the slack frontier sound on budget-filtered spaces where
	// coordinate corners (e.g. the all-max mix) are not admitted.
	if cs, ok := st.space.(interface{ LatencyCornerIndices() []int }); ok {
		corners := cs.LatencyCornerIndices()
		for _, k := range corners {
			add(k)
		}
		if t := len(corners) + 4; t > target {
			target = t
		}
	}
	if v := st.view; v != nil {
		c := make([]int, v.dims)
		for i := range c {
			c[i] = v.card[i] - 1
		}
		add(v.indexOf(c))
		for i := range c {
			c[i] = 0
		}
		add(v.indexOf(c))
		for val := 0; val < v.card[0]; val++ {
			for i := range c {
				c[i] = v.card[i] - 1
			}
			c[0] = val
			add(v.indexOf(c))
		}
		if t := 2*v.dims + 4; t > target {
			target = t
		}
	} else {
		add(0)
		add(st.n - 1)
	}
	for tries := 0; len(idxs) < target && tries < 8*target; tries++ {
		add(st.rng.Intn(st.n))
	}
	return idxs
}

// calibrate drives the selector's per-model latency reference toward the
// exhaustive sweep's before the strategy runs. The reference only tightens on
// latencies of statically feasible points (dse.Selector), and the corner
// seeds — minimum latency but maximum area — are typically static-infeasible
// on constrained spaces, so without this pass a budgeted run would hold a
// looser reference than the full sweep and could select an area-smaller
// point the sweep rejects on latency slack. Per model: from the best
// statically feasible point seen, binary-search the diagonal chain toward
// the all-max corner for the furthest feasible point (chip area and mix slot
// budgets grow monotonically along every axis, so feasibility along a
// monotone chain is monotone), then refine with the steepest feasible
// single-axis +1 step until none improves. Deterministic (no RNG), scored
// through visit so every probe is budget-ledgered and selector-observed, and
// capped at half the budget so the strategies keep room to optimize area.
func (st *state) calibrate() {
	v := st.view
	if v == nil {
		return
	}
	floor := st.budget0 / 2
	capped := func() bool { return st.exhausted() || st.budget < floor }
	cur := make([]int, v.dims)
	best := make([]int, v.dims)
	axes := make([]int, 0, v.dims)
	for i := 0; i < st.nm && !capped(); i++ {
		// Chain family: the full diagonal from the best statically feasible
		// observation, plus for every axis d a two-phase pure lift from the
		// zero base — axis d alone, then the remaining axes. The pure lifts
		// reach single-type compositions (the per-model latency optimum on
		// mix spaces is typically all slots in that model's best chiplet type
		// at maximum banks, a corner the diagonal cannot hit), and the base
		// being non-admitted (the all-zero mix) just skips that chain.
		found := false
		bestLat := math.Inf(1)
		track := func(cur []int) {
			if idx := v.indexOf(cur); idx >= 0 {
				if s, ok := st.slots[idx]; ok && st.errs[s] == nil && st.static[s*st.nm+i] {
					if l := st.lats[s*st.nm+i]; l < bestLat {
						bestLat = l
						copy(best, cur)
						found = true
					}
				}
			}
		}
		s0, lat0 := -1, math.Inf(1)
		for s := range st.pts {
			if st.errs[s] == nil && st.static[s*st.nm+i] && st.lats[s*st.nm+i] < lat0 {
				s0, lat0 = s, st.lats[s*st.nm+i]
			}
		}
		if s0 >= 0 {
			v.coordsOf(st.pts[s0], cur)
			track(cur)
			allAxes := axes[:0]
			for d := 0; d < v.dims; d++ {
				allAxes = append(allAxes, d)
			}
			st.liftChain(i, cur, allAxes)
			if st.err != nil {
				return
			}
			track(cur)
		}
		for d := 0; d < v.dims && !capped(); d++ {
			for e := range cur {
				cur[e] = 0
			}
			st.liftChain(i, cur, []int{d})
			if st.err != nil {
				return
			}
			// Cyclic coordinate ascent over the remaining axes: each is
			// lifted alone to its feasible maximum, repeatedly, so the area
			// budget left by axis d goes to whichever axes can still use it
			// (banks, then any slack) instead of being split diagonally
			// across the competing type axes.
			for pass := 0; pass < 4 && !capped(); pass++ {
				changed := false
				for e := 0; e < v.dims; e++ {
					if e == d {
						continue
					}
					was := cur[e]
					st.liftChain(i, cur, []int{e})
					if st.err != nil {
						return
					}
					if cur[e] != was {
						changed = true
					}
				}
				if !changed {
					break
				}
			}
			track(cur)
		}
		if !found {
			continue
		}
		copy(cur, best)
		st.swapRefine(i, cur, capped)
		if st.err != nil {
			return
		}
	}
}

// liftChain advances cur along the monotone chain that raises every axis in
// axes together (each clamped at its cardinality), to the furthest offset
// that is statically feasible for model i, by binary search: chip area and
// mix slot budgets grow monotonically along the chain, so feasibility is a
// prefix. Probes are scored through visit (budget-ledgered, selector-
// observed, memo-deduplicated). cur is left at the best feasible offset
// found (unchanged when none is).
func (st *state) liftChain(i int, cur []int, axes []int) {
	v := st.view
	maxT := 0
	for _, d := range axes {
		if t := v.card[d] - 1 - cur[d]; t > maxT {
			maxT = t
		}
	}
	at := func(dst []int, t int) {
		copy(dst, cur)
		for _, d := range axes {
			dst[d] += t
			if m := v.card[d] - 1; dst[d] > m {
				dst[d] = m
			}
		}
	}
	probe := make([]int, v.dims)
	feasible := func(t int) bool {
		at(probe, t)
		idx := v.indexOf(probe)
		if idx < 0 {
			return false
		}
		slots := st.visit([]int{idx})
		if st.err != nil {
			return false
		}
		s := slots[0]
		return s >= 0 && st.errs[s] == nil && st.static[s*st.nm+i]
	}
	lo, hi := 0, maxT
	for lo < hi {
		if st.err != nil || st.budget < st.nm {
			break
		}
		mid := (lo + hi + 1) / 2
		if feasible(mid) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	if lo > 0 && feasible(lo) {
		at(probe, lo)
		copy(cur, probe)
	}
}

// swapRefine walks cur by steepest descent on model i's latency over the
// move set {single-axis +1} ∪ {−1 on one axis, +1 on another}: the swaps
// rebalance the composition a lift fixed (trade one chiplet type's slots for
// a faster type's within the same area budget). Every accepted move strictly
// lowers the model's latency, so the walk cannot cycle.
func (st *state) swapRefine(i int, cur []int, capped func() bool) {
	v := st.view
	cands := make([]int, 0, v.dims*v.dims)
	moves := make([][2]int, 0, v.dims*v.dims)
	for !capped() {
		base := v.indexOf(cur)
		slot, ok := st.slots[base]
		if base < 0 || !ok {
			return
		}
		curLat := st.lats[slot*st.nm+i]
		cands, moves = cands[:0], moves[:0]
		propose := func(down, up int) {
			if idx := v.indexOf(cur); idx >= 0 {
				cands = append(cands, idx)
				moves = append(moves, [2]int{down, up})
			}
		}
		for e := 0; e < v.dims; e++ {
			if cur[e]+1 >= v.card[e] {
				continue
			}
			cur[e]++
			propose(-1, e)
			for d := 0; d < v.dims; d++ {
				if d == e || cur[d] == 0 {
					continue
				}
				cur[d]--
				propose(d, e)
				cur[d]++
			}
			cur[e]--
		}
		if len(cands) == 0 {
			return
		}
		slots := st.visit(cands)
		if st.err != nil {
			return
		}
		bestMove, bestLat := -1, curLat
		for j, s := range slots {
			if s < 0 || st.errs[s] != nil || !st.static[s*st.nm+i] {
				continue
			}
			if l := st.lats[s*st.nm+i]; l < bestLat {
				bestMove, bestLat = j, l
			}
		}
		if bestMove < 0 {
			return
		}
		mv := moves[bestMove]
		if mv[0] >= 0 {
			cur[mv[0]]--
		}
		cur[mv[1]]++
	}
}

// randomUnvisited returns a uniformly random point index that has not been
// scored yet. The strategies call this to break a stall: when every candidate
// a round proposes is already visited, the budget stops moving and the loop
// would otherwise spin forever. Rejection sampling terminates fast while the
// visited fraction is small (the budgeted regime); the linear fallback covers
// nearly-full spaces. Callers must ensure len(pts) < n (exhausted() does).
func (st *state) randomUnvisited() int {
	for try := 0; try < 64; try++ {
		k := st.rng.Intn(st.n)
		if _, ok := st.slots[k]; !ok {
			return k
		}
	}
	start := st.rng.Intn(st.n)
	for off := 0; off < st.n; off++ {
		k := start + off
		if k >= st.n {
			k -= st.n
		}
		if _, ok := st.slots[k]; !ok {
			return k
		}
	}
	return st.rng.Intn(st.n)
}

// neighbor proposes a coordinate-neighborhood move from point k: a ±1 step
// on one random axis, retried across axes until it lands on an admitted
// point. Falls back to a uniform random index when the space has no
// coordinate view or no valid step was found.
func (st *state) neighbor(k int) int {
	v := st.view
	if v == nil {
		return st.rng.Intn(st.n)
	}
	c := st.coordScratch
	v.coordsOf(k, c)
	for try := 0; try < 2*v.dims; try++ {
		d := st.rng.Intn(v.dims)
		dir := 1
		if st.rng.Intn(2) == 0 {
			dir = -1
		}
		nc := c[d] + dir
		if nc < 0 || nc >= v.card[d] {
			continue
		}
		old := c[d]
		c[d] = nc
		idx := v.indexOf(c)
		c[d] = old
		if idx >= 0 && idx != k {
			return idx
		}
	}
	return st.rng.Intn(st.n)
}

// trace snapshots the run's accounting.
func (st *state) trace(strategy string) Trace {
	return Trace{
		Strategy:     strategy,
		Seed:         st.seed,
		Budget:       st.budget0,
		Evaluations:  st.evals,
		CacheHits:    st.hits,
		UniquePoints: len(st.pts),
		Improvements: st.improvements,
	}
}

// finish materializes the selector's winner into a dse.Result with the same
// shape ExploreSpace produces: the union-kind config (idle-bank leakage
// priced in), full per-layer evals, the feasible count over the visited set
// under the final reference, and the space description. Under staged
// fidelity the winner instead comes from re-scoring the visited-set
// dominance frontier with the physical models — the same RefineSelect
// discipline the exhaustive sweep applies to its merged frontier.
func (st *state) finish(strategy string) (dse.Result, Trace, error) {
	tr := st.trace(strategy)
	best, bestArea, ok := st.sel.Best()
	if !ok {
		for i, r := range st.sel.BestLatencies() {
			if math.IsInf(r, 1) {
				return dse.Result{}, tr, fmt.Errorf("search: no visited point meets area/power constraints for %s (%d points tried)",
					st.models[i].Name, len(st.pts))
			}
		}
		return dse.Result{}, tr, fmt.Errorf("search: no feasible configuration among %d visited points under %+v",
			len(st.pts), st.cons)
	}
	var refineStats *dse.RefineStats
	if st.fid.Staged() {
		refined, stats, err := st.fid.RefineSelect(st.ctx, st.sel.FeasibleFrontier(),
			st.models, st.space, st.cons, st.ev)
		tr.RefinedPoints = stats.Refined
		tr.ThermalRejected = stats.ThermalRejected
		if err != nil {
			return dse.Result{}, tr, err
		}
		best = refined
		bestArea = st.areas[st.slots[best]]
		refineStats = &stats
	}
	tr.BestAreaMM2 = bestArea
	tr.EvalsToWin = st.evalAt[st.slots[best]]

	feasible := 0
	for s := range st.pts {
		if st.errs[s] != nil {
			continue
		}
		allOK := true
		for i := 0; i < st.nm; i++ {
			if !st.static[s*st.nm+i] {
				allOK = false
				break
			}
		}
		if allOK && st.sel.SlackOK(st.lats[s*st.nm:(s+1)*st.nm]) {
			feasible++
		}
	}

	final := hw.NewConfig(st.space.At(best), st.models)
	final.Cat = hw.CatalogueOf(st.space)
	evals := make([]*ppa.Eval, st.nm)
	for i, m := range st.models {
		e, err := st.ev.Evaluate(m, final)
		if err != nil {
			return dse.Result{}, tr, err
		}
		evals[i] = e
	}
	return dse.Result{
		Config:    final,
		Evals:     evals,
		Feasible:  feasible,
		Explored:  len(st.pts),
		SpaceDesc: st.space.Desc(),
		Refined:   refineStats,
	}, tr, nil
}
