package search

import "repro/internal/hw"

// coordView caches a space's coordinate geometry (axis count and per-axis
// cardinalities) so strategies can propose moves without re-querying the
// space. nil when the space has no random-access coordinates — strategies
// then degrade to uniform index sampling.
type coordView struct {
	cs   hw.CoordSpace
	dims int
	card []int
}

// newCoordView builds the view, or returns nil for non-coordinate spaces.
func newCoordView(space hw.DesignSpace) *coordView {
	cs, ok := space.(hw.CoordSpace)
	if !ok {
		return nil
	}
	d := cs.Dims()
	if d <= 0 {
		return nil
	}
	v := &coordView{cs: cs, dims: d, card: make([]int, d)}
	for i := 0; i < d; i++ {
		v.card[i] = cs.Card(i)
		if v.card[i] < 1 {
			return nil
		}
	}
	return v
}

// coordsOf decomposes a point index into out (len >= dims).
func (v *coordView) coordsOf(i int, out []int) { v.cs.CoordsOf(i, out) }

// indexOf recomposes coordinates, -1 for non-admitted tuples.
func (v *coordView) indexOf(c []int) int { return v.cs.IndexOf(c) }
