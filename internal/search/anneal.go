package search

import (
	"context"
	"math"

	"repro/internal/dse"
	"repro/internal/hw"
	"repro/internal/workload"
)

// annealer is simulated annealing with coordinate-neighborhood moves: each
// round proposes a batch of ±1-axis-step neighbors of the current point,
// scores them in parallel through the evaluator pool, then applies the
// Metropolis acceptance rule sequentially on the coordinator (all randomness
// lives there, so runs are deterministic at any worker count). Temperature
// cools geometrically with budget progress from T0 to T1 (fractions of the
// walk's starting fitness), and the budget is split into Restarts phases
// that re-center the walk — even phases on the best point seen, odd phases
// on a fresh random point — so one deep local minimum cannot strand the
// whole budget.
type annealer struct {
	eng engine
}

// Name returns "anneal".
func (a *annealer) Name() string { return "anneal" }

// Run executes the annealing search.
func (a *annealer) Run(ctx context.Context, models []*workload.Model, space hw.DesignSpace,
	cons dse.Constraints, budget int) (dse.Result, Trace, error) {
	return a.eng.run(ctx, models, space, cons, budget, a.anneal)
}

func (a *annealer) anneal(st *state) error {
	p := a.eng.spec.Anneal
	total := st.budget // remaining after seeding; defines cooling progress
	if total < st.nm {
		return nil
	}
	cur := st.bestByFitness()
	if cur < 0 {
		return nil
	}
	t0fit := st.fitness(cur)
	if t0fit <= 0 || math.IsInf(t0fit, 1) {
		t0fit = 1
	}
	phase := 0
	stall := 0
	batch := make([]int, 0, p.Batch)
	for !st.exhausted() {
		// A stalled walk — several rounds whose every proposal was already
		// scored — consumes no budget, so without intervention the loop would
		// spin forever inside a fully-visited neighborhood. Teleport to a
		// fresh random point; the forced visit is guaranteed to move the
		// budget (or trip exhaustion).
		if stall >= 3 {
			stall = 0
			slots := st.visit([]int{st.randomUnvisited()})
			if st.err != nil {
				return st.err
			}
			if s := slots[0]; s >= 0 {
				cur = s
				t0fit = st.fitness(cur)
				if t0fit <= 0 || math.IsInf(t0fit, 1) {
					t0fit = 1
				}
			}
			continue
		}
		// Restart when budget progress crosses a phase boundary.
		used := total - st.budget
		if ph := used * p.Restarts / total; ph > phase {
			phase = ph
			if phase%2 == 0 {
				cur = st.bestByFitness()
			} else {
				slots := st.visit([]int{st.rng.Intn(st.n)})
				if st.err != nil {
					return st.err
				}
				if s := slots[0]; s >= 0 {
					cur = s
				}
			}
			t0fit = st.fitness(cur)
			if t0fit <= 0 || math.IsInf(t0fit, 1) {
				t0fit = 1
			}
		}
		batch = batch[:0]
		for j := 0; j < p.Batch; j++ {
			batch = append(batch, st.neighbor(st.pts[cur]))
		}
		before := len(st.pts)
		slots := st.visit(batch)
		if st.err != nil {
			return st.err
		}
		if len(st.pts) == before {
			stall++
		} else {
			stall = 0
		}
		// Sequential Metropolis acceptance over the scored batch: fitness is
		// re-read per step because the selector's latency reference may have
		// tightened mid-batch.
		prog := float64(total-st.budget) / float64(total)
		temp := p.T0 * t0fit * math.Pow(p.T1/p.T0, prog)
		if temp < 1e-300 {
			temp = 1e-300
		}
		for _, s := range slots {
			if s < 0 || s == cur {
				continue
			}
			delta := st.fitness(s) - st.fitness(cur)
			if delta <= 0 || st.rng.Float64() < math.Exp(-delta/temp) {
				cur = s
			}
		}
	}
	return nil
}
