package search

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/dse"
	"repro/internal/eval"
	"repro/internal/hw"
	"repro/internal/workload"
)

// testSpaces returns the exhaustively verifiable spaces the search tests run
// against: the paper's 81-point grid, a generated fine subset, and the
// heterogeneous mix space (budget-filtered coordinates, so IndexOf can
// return -1).
func testSpaces(t *testing.T) []struct {
	name   string
	space  hw.DesignSpace
	models []*workload.Model
} {
	t.Helper()
	fineSub, err := hw.ParseSpace("6x6x4x4")
	if err != nil {
		t.Fatal(err)
	}
	mix, err := hw.DefaultMixSpec(nil).Build()
	if err != nil {
		t.Fatal(err)
	}
	return []struct {
		name   string
		space  hw.DesignSpace
		models []*workload.Model
	}{
		{"paper", hw.PaperSpace(), []*workload.Model{workload.NewAlexNet()}},
		{"fine-subset", fineSub, []*workload.Model{workload.NewAlexNet(), workload.NewResNet18()}},
		{"mix", mix, []*workload.Model{workload.NewAlexNet(), workload.NewViTBase()}},
	}
}

// canonResult flattens the fields of a search Result that must be identical
// across worker counts into one comparable string.
func canonResult(r dse.Result) string {
	return fmt.Sprintf("point=%+v feasible=%d explored=%d space=%q evals=%d",
		r.Config.Point, r.Feasible, r.Explored, r.SpaceDesc, len(r.Evals))
}

// selectionArea recomputes the summed per-model selection area of a point —
// the quantity search minimizes — so gap comparisons are like for like.
func selectionArea(t *testing.T, ev *eval.Evaluator, models []*workload.Model, space hw.DesignSpace, pt hw.Point) float64 {
	t.Helper()
	area := 0.0
	for _, m := range models {
		c := hw.NewConfig(hw.Point{}, []*workload.Model{m})
		c.Cat = hw.CatalogueOf(space)
		c.Point = pt
		s, err := ev.EvaluateSummary(m, c, 1)
		if err != nil {
			t.Fatal(err)
		}
		area += s.AreaMM2
	}
	return area
}

// TestSearchDeterminismAcrossWorkers pins the seed-determinism contract:
// for a fixed seed, both strategies must return byte-identical results and
// traces at 1 and 8 evaluator workers, on every test space.
func TestSearchDeterminismAcrossWorkers(t *testing.T) {
	for _, tc := range testSpaces(t) {
		n, nm := tc.space.Len(), len(tc.models)
		budget := n * nm / 4
		for _, kind := range []string{"anneal", "genetic"} {
			spec, err := ParseSpec(kind)
			if err != nil {
				t.Fatal(err)
			}
			type run struct {
				res   string
				trace Trace
			}
			var runs []run
			for _, workers := range []int{1, 8} {
				opt, err := New(spec, Options{Seed: 7, Evaluator: eval.New(eval.Options{Workers: workers})})
				if err != nil {
					t.Fatal(err)
				}
				res, tr, err := opt.Run(context.Background(), tc.models, tc.space, dse.DefaultConstraints(), budget)
				if err != nil {
					t.Fatalf("%s/%s workers=%d: %v", tc.name, kind, workers, err)
				}
				runs = append(runs, run{canonResult(res), tr})
			}
			if runs[0].res != runs[1].res {
				t.Errorf("%s/%s: result differs across workers\nw1: %s\nw8: %s",
					tc.name, kind, runs[0].res, runs[1].res)
			}
			if !reflect.DeepEqual(runs[0].trace, runs[1].trace) {
				t.Errorf("%s/%s: trace differs across workers\nw1: %+v\nw8: %+v",
					tc.name, kind, runs[0].trace, runs[1].trace)
			}
		}
	}
}

// TestSearchBudgetExactness pins the budget ledger: on a fresh evaluator the
// miss count after a run (scoring plus winner materialization) never exceeds
// the budget, evaluations equal unique points x models, and repeat visits
// surface as trace cache hits, not budget spend.
func TestSearchBudgetExactness(t *testing.T) {
	for _, tc := range testSpaces(t) {
		n, nm := tc.space.Len(), len(tc.models)
		budget := n * nm / 5
		for _, kind := range []string{"anneal", "genetic"} {
			spec, err := ParseSpec(kind)
			if err != nil {
				t.Fatal(err)
			}
			ev := eval.New(eval.Options{Workers: 4})
			opt, err := New(spec, Options{Seed: 3, Evaluator: ev})
			if err != nil {
				t.Fatal(err)
			}
			_, tr, err := opt.Run(context.Background(), tc.models, tc.space, dse.DefaultConstraints(), budget)
			if err != nil {
				t.Fatalf("%s/%s: %v", tc.name, kind, err)
			}
			stats := ev.Stats()
			if stats.Misses > uint64(budget) {
				t.Errorf("%s/%s: evaluator misses %d exceed budget %d", tc.name, kind, stats.Misses, budget)
			}
			if tr.Evaluations != tr.UniquePoints*nm {
				t.Errorf("%s/%s: Evaluations=%d != UniquePoints(%d) x models(%d)",
					tc.name, kind, tr.Evaluations, tr.UniquePoints, nm)
			}
			if tr.Evaluations > budget-nm {
				t.Errorf("%s/%s: Evaluations=%d exceed scoring budget %d", tc.name, kind, tr.Evaluations, budget-nm)
			}
			if tr.EvalsToWin <= 0 || tr.EvalsToWin > tr.Evaluations {
				t.Errorf("%s/%s: EvalsToWin=%d out of range (0, %d]", tc.name, kind, tr.EvalsToWin, tr.Evaluations)
			}
			if tr.CacheHits < 0 {
				t.Errorf("%s/%s: negative CacheHits", tc.name, kind)
			}
		}
	}
}

// TestSearchGapRegression is the optimality-gap regression gate on spaces
// where brute force is feasible: with a quarter of the exhaustive budget,
// both strategies must land within 5% of the exhaustive optimum's selection
// area (the bench gates the headline 1%-at-5%-budget criterion on the full
// fine and mixfine spaces).
func TestSearchGapRegression(t *testing.T) {
	for _, tc := range testSpaces(t) {
		n, nm := tc.space.Len(), len(tc.models)
		ev := eval.New(eval.Options{Workers: 8})
		exh, err := dse.ExploreSpace(tc.models, tc.space, dse.DefaultConstraints(), ev, nil)
		if err != nil {
			t.Fatal(err)
		}
		exhArea := selectionArea(t, ev, tc.models, tc.space, exh.Config.Point)
		budget := n * nm / 4
		for _, kind := range []string{"anneal", "genetic"} {
			spec, err := ParseSpec(kind)
			if err != nil {
				t.Fatal(err)
			}
			opt, err := New(spec, Options{Seed: 11, Evaluator: ev})
			if err != nil {
				t.Fatal(err)
			}
			_, tr, err := opt.Run(context.Background(), tc.models, tc.space, dse.DefaultConstraints(), budget)
			if err != nil {
				t.Fatalf("%s/%s: %v", tc.name, kind, err)
			}
			gap := (tr.BestAreaMM2 - exhArea) / exhArea
			if gap > 0.05 || gap < -0.05 {
				t.Errorf("%s/%s: optimality gap %.4f exceeds ±5%% (search %.4f mm2, exhaustive %.4f mm2, %d/%d evals)",
					tc.name, kind, gap, tr.BestAreaMM2, exhArea, tr.Evaluations, n*nm)
			}
		}
	}
}

// TestSearchFallbackExhaustive pins the fallback contract: a budget covering
// the whole space routes to the exhaustive streaming sweep (early-exit
// enabled) and returns its exact winner with Fallback set.
func TestSearchFallbackExhaustive(t *testing.T) {
	for _, tc := range testSpaces(t) {
		n, nm := tc.space.Len(), len(tc.models)
		ev := eval.New(eval.Options{Workers: 4})
		exh, err := dse.ExploreSpace(tc.models, tc.space, dse.DefaultConstraints(), ev, nil)
		if err != nil {
			t.Fatal(err)
		}
		spec, err := ParseSpec("anneal")
		if err != nil {
			t.Fatal(err)
		}
		opt, err := New(spec, Options{Seed: 1, Evaluator: ev})
		if err != nil {
			t.Fatal(err)
		}
		res, tr, err := opt.Run(context.Background(), tc.models, tc.space, dse.DefaultConstraints(), n*nm)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !tr.Fallback || tr.Strategy != "exhaustive" {
			t.Errorf("%s: expected exhaustive fallback, got %+v", tc.name, tr)
		}
		if res.Config.Point != exh.Config.Point {
			t.Errorf("%s: fallback selected %+v, exhaustive %+v", tc.name, res.Config.Point, exh.Config.Point)
		}
	}
}

// TestSearchBudgetTooSmall pins the minimum-budget error.
func TestSearchBudgetTooSmall(t *testing.T) {
	spec, err := ParseSpec("genetic")
	if err != nil {
		t.Fatal(err)
	}
	opt, err := New(spec, Options{Seed: 1, Evaluator: eval.New(eval.Options{Workers: 1})})
	if err != nil {
		t.Fatal(err)
	}
	models := []*workload.Model{workload.NewAlexNet(), workload.NewResNet18()}
	if _, _, err := opt.Run(context.Background(), models, hw.PaperSpace(), dse.DefaultConstraints(), 3); err == nil {
		t.Fatal("expected an error for a budget below the minimum")
	}
}
