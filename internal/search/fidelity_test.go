package search

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/dse"
	"repro/internal/eval"
	"repro/internal/fidelity"
	"repro/internal/hw"
	"repro/internal/louvain"
	"repro/internal/noc"
	"repro/internal/thermal"
	"repro/internal/workload"
)

// stagedOptions builds the default physical-model projection for staged
// search tests without importing core (which imports this package's sibling).
func stagedOptions() *dse.FidelityOptions {
	return &dse.FidelityOptions{
		Mode: dse.FidelityStaged,
		Params: fidelity.Params{
			NoC:               noc.DefaultNoC(),
			NoP:               noc.DefaultNoP(),
			MaxChipletAreaMM2: 50,
			Cluster: func(n int, edges []louvain.Edge) ([]int, error) {
				res, err := louvain.Cluster(n, edges)
				if err != nil {
					return nil, err
				}
				return res.Community, nil
			},
			Thermal:        thermal.Default(),
			JunctionLimitC: 105,
		},
	}
}

// TestSearchStagedDeterminism extends the seed-determinism contract to staged
// fidelity: results, traces and stage-1 counters must be byte-identical at
// 1 and 8 evaluator workers, and stage 1 must actually run.
func TestSearchStagedDeterminism(t *testing.T) {
	space := hw.PaperSpace()
	models := []*workload.Model{workload.NewAlexNet(), workload.NewResNet18()}
	budget := space.Len() * len(models) / 4
	spec, err := ParseSpec("anneal")
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	var traces []Trace
	for _, workers := range []int{1, 8} {
		opt, err := New(spec, Options{
			Seed:      7,
			Evaluator: eval.New(eval.Options{Workers: workers}),
			Fidelity:  stagedOptions(),
		})
		if err != nil {
			t.Fatal(err)
		}
		res, tr, err := opt.Run(context.Background(), models, space, dse.DefaultConstraints(), budget)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		out = append(out, canonResult(res))
		traces = append(traces, tr)
	}
	if out[0] != out[1] {
		t.Errorf("staged search differs across workers\nw1: %s\nw8: %s", out[0], out[1])
	}
	if !reflect.DeepEqual(traces[0], traces[1]) {
		t.Errorf("staged trace differs across workers\nw1: %+v\nw8: %+v", traces[0], traces[1])
	}
	if traces[0].RefinedPoints == 0 {
		t.Error("staged search refined nothing")
	}
	if traces[0].RefinedPoints > traces[0].UniquePoints {
		t.Errorf("refined %d of %d visited points; frontier pruning is not working",
			traces[0].RefinedPoints, traces[0].UniquePoints)
	}
}

// TestSearchStagedFallback pins the fallback interplay: a space-covering
// budget routes through the exhaustive sweep with fidelity threaded, the
// sweep disables its own early exit (a truncated scan's frontier is not the
// full frontier), and the stage-1 counters surface in the trace.
func TestSearchStagedFallback(t *testing.T) {
	space := hw.PaperSpace()
	models := []*workload.Model{workload.NewAlexNet()}
	spec, err := ParseSpec("genetic")
	if err != nil {
		t.Fatal(err)
	}
	opt, err := New(spec, Options{
		Seed:      3,
		Evaluator: eval.New(eval.Options{Workers: 4}),
		Fidelity:  stagedOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, tr, err := opt.Run(context.Background(), models, space, dse.DefaultConstraints(),
		space.Len()*len(models))
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Fallback {
		t.Fatal("space-covering budget must fall back to the exhaustive sweep")
	}
	if tr.SkippedPoints != 0 {
		t.Errorf("staged fallback skipped %d points; early exit must be disabled", tr.SkippedPoints)
	}
	if tr.RefinedPoints == 0 {
		t.Error("staged fallback refined nothing")
	}
	if res.Explored != space.Len() {
		t.Errorf("Explored = %d, want the full space %d", res.Explored, space.Len())
	}
}
