package search

import "testing"

// FuzzParseSearchSpec fuzzes the -search flag grammar: any input either
// fails to parse or parses to a spec whose canonical String form reparses to
// the identical spec (round-trip stability), validates consistently, and
// renders idempotently.
func FuzzParseSearchSpec(f *testing.F) {
	for _, seed := range []string{
		"anneal", "genetic", "anneal:restarts=4,batch=16,t0=0.1,t1=0.002",
		"genetic:pop=24,batch=12,tourn=2,mut=0.25,cx=0.9",
		"genetic:pop=64,mut=0.1", "anneal:t0=1e-3", " Anneal : T0 = 0.2 ",
		"anneal:", "tabu:x=1", "genetic:pop=", "anneal:t1=2,t0=1",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := ParseSpec(s)
		if err != nil {
			return
		}
		canon := spec.String()
		again, err := ParseSpec(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not reparse: %v", canon, s, err)
		}
		if again != spec {
			t.Fatalf("round trip changed the spec for %q:\nfirst:  %+v\nsecond: %+v", s, spec, again)
		}
		if again.String() != canon {
			t.Fatalf("canonical form not idempotent for %q: %q vs %q", s, canon, again.String())
		}
		if (spec.Validate() == nil) != (again.Validate() == nil) {
			t.Fatalf("validation not stable across round trip for %q", s)
		}
	})
}
