// Package search is the budgeted metaheuristic layer over hw.DesignSpace:
// when a space is too large to sweep exhaustively (ROADMAP item 2), an
// Optimizer finds a near-optimal configuration with a bounded number of
// evaluations. Two strategies ship — simulated annealing with
// coordinate-neighborhood moves and a steady-state genetic algorithm with
// crossover over axis/mix coordinate vectors — behind one interface.
// Candidates are scored through the eval.Evaluator worker pool and its
// two-level cache; selection replays the streaming sweep's dominance/slack
// discipline (dse.Selector), so the returned Result is bit-compatible with
// dse.ExploreSpace restricted to the visited set; and every run is
// deterministic for a fixed seed at any worker count, because all random
// decisions happen on the coordinator goroutine over deterministically
// ordered batch results.
package search

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// AnnealParams tunes the simulated-annealing strategy.
type AnnealParams struct {
	// Restarts splits the budget into phases; each later phase restarts
	// from the best (even phases) or a fresh random (odd phases) point.
	Restarts int
	// Batch is the number of neighbor proposals scored in parallel per
	// Metropolis round.
	Batch int
	// T0 and T1 are the initial and final temperatures as fractions of the
	// fitness at the walk's starting point; cooling is geometric in budget
	// progress.
	T0, T1 float64
}

// GeneticParams tunes the steady-state genetic strategy.
type GeneticParams struct {
	// Pop is the population size.
	Pop int
	// Batch is the number of offspring scored in parallel per generation.
	Batch int
	// Tourn is the tournament size for parent selection.
	Tourn int
	// Mut is the per-axis ±1-step mutation probability.
	Mut float64
	// Cross is the probability an offspring crosses two parents (uniform
	// per-axis) instead of cloning one.
	Cross float64
}

// Spec names a search strategy plus its parameters — the parsed form of the
// -search flag grammar `kind[:key=val,...]`, e.g. "anneal" or
// "genetic:pop=64,mut=0.1". Parameters not given take defaults.
type Spec struct {
	// Kind is "anneal" or "genetic".
	Kind    string
	Anneal  AnnealParams
	Genetic GeneticParams
}

// DefaultAnnealParams returns the annealing defaults, tuned on the fine
// (12,288-point, 13-model) and mixfine (≈110k-point, 3-model) benchmark
// cases: the smaller batch spends more rounds of sequential Metropolis
// acceptance per budget, and the extra restarts with a cooler schedule keep
// the worst-case optimality gap across seeds within a few hundredths of a
// percent on both spaces.
func DefaultAnnealParams() AnnealParams {
	return AnnealParams{Restarts: 8, Batch: 8, T0: 0.05, T1: 0.001}
}

// DefaultGeneticParams returns the genetic defaults, tuned on the same
// benchmark cases as DefaultAnnealParams: the larger population with a
// higher mutation rate holds composition diversity on mix spaces, where the
// area optimum sits on a narrow slice of the count simplex.
func DefaultGeneticParams() GeneticParams {
	return GeneticParams{Pop: 96, Batch: 12, Tourn: 3, Mut: 0.5, Cross: 0.8}
}

// ParseSpec parses a -search flag value. The grammar is
// `kind[:key=val[,key=val...]]` with kind one of "anneal" (keys restarts,
// batch, t0, t1) and "genetic" (keys pop, batch, tourn, mut, cx);
// unspecified keys take defaults. Case-insensitive, whitespace-tolerant.
func ParseSpec(s string) (Spec, error) {
	head, params, hasParams := strings.Cut(s, ":")
	kind := strings.ToLower(strings.TrimSpace(head))
	spec := Spec{Kind: kind, Anneal: DefaultAnnealParams(), Genetic: DefaultGeneticParams()}
	switch kind {
	case "anneal", "genetic":
	default:
		return Spec{}, fmt.Errorf("search: spec %q: kind %q: want anneal or genetic", s, kind)
	}
	if !hasParams {
		return spec, nil
	}
	if strings.TrimSpace(params) == "" {
		return Spec{}, fmt.Errorf("search: spec %q: empty parameter list", s)
	}
	for _, kv := range strings.Split(params, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return Spec{}, fmt.Errorf("search: spec %q: parameter %q: want key=value", s, kv)
		}
		k = strings.ToLower(strings.TrimSpace(k))
		v = strings.TrimSpace(v)
		var err error
		if kind == "anneal" {
			err = spec.Anneal.set(k, v)
		} else {
			err = spec.Genetic.set(k, v)
		}
		if err != nil {
			return Spec{}, fmt.Errorf("search: spec %q: %v", s, err)
		}
	}
	return spec, nil
}

// String renders the spec canonically, with every parameter of the active
// kind explicit: ParseSpec(s.String()) round-trips to an equal Spec.
func (s Spec) String() string {
	switch s.Kind {
	case "anneal":
		p := s.Anneal
		return fmt.Sprintf("anneal:restarts=%d,batch=%d,t0=%g,t1=%g", p.Restarts, p.Batch, p.T0, p.T1)
	case "genetic":
		p := s.Genetic
		return fmt.Sprintf("genetic:pop=%d,batch=%d,tourn=%d,mut=%g,cx=%g", p.Pop, p.Batch, p.Tourn, p.Mut, p.Cross)
	default:
		return s.Kind
	}
}

// Validate checks the active kind's parameters.
func (s Spec) Validate() error {
	switch s.Kind {
	case "anneal":
		return s.Anneal.validate()
	case "genetic":
		return s.Genetic.validate()
	default:
		return fmt.Errorf("search: kind %q: want anneal or genetic", s.Kind)
	}
}

func parseIntIn(key, v string, lo, hi int) (int, error) {
	n, err := strconv.Atoi(v)
	if err != nil || n < lo || n > hi {
		return 0, fmt.Errorf("%s %q must be an integer in [%d, %d]", key, v, lo, hi)
	}
	return n, nil
}

func parseFloatIn(key, v string, lo, hi float64) (float64, error) {
	f, err := strconv.ParseFloat(v, 64)
	if err != nil || math.IsNaN(f) || f < lo || f > hi {
		return 0, fmt.Errorf("%s %q must be a number in [%g, %g]", key, v, lo, hi)
	}
	return f, nil
}

func (p *AnnealParams) set(k, v string) error {
	var err error
	switch k {
	case "restarts":
		p.Restarts, err = parseIntIn(k, v, 1, 64)
	case "batch":
		p.Batch, err = parseIntIn(k, v, 1, 1024)
	case "t0":
		p.T0, err = parseFloatIn(k, v, 1e-9, 100)
	case "t1":
		p.T1, err = parseFloatIn(k, v, 1e-12, 100)
	default:
		err = fmt.Errorf("unknown anneal key %q (want restarts, batch, t0, t1)", k)
	}
	return err
}

func (p AnnealParams) validate() error {
	if p.Restarts < 1 || p.Restarts > 64 || p.Batch < 1 || p.Batch > 1024 {
		return fmt.Errorf("search: anneal: restarts/batch out of range: %+v", p)
	}
	if !(p.T0 > 0) || !(p.T1 > 0) || p.T1 > p.T0 {
		return fmt.Errorf("search: anneal: want 0 < t1 <= t0, got t0=%g t1=%g", p.T0, p.T1)
	}
	return nil
}

func (p *GeneticParams) set(k, v string) error {
	var err error
	switch k {
	case "pop":
		p.Pop, err = parseIntIn(k, v, 2, 4096)
	case "batch":
		p.Batch, err = parseIntIn(k, v, 1, 1024)
	case "tourn":
		p.Tourn, err = parseIntIn(k, v, 1, 64)
	case "mut":
		p.Mut, err = parseFloatIn(k, v, 0, 1)
	case "cx":
		p.Cross, err = parseFloatIn(k, v, 0, 1)
	default:
		err = fmt.Errorf("unknown genetic key %q (want pop, batch, tourn, mut, cx)", k)
	}
	return err
}

func (p GeneticParams) validate() error {
	if p.Pop < 2 || p.Pop > 4096 || p.Batch < 1 || p.Batch > 1024 || p.Tourn < 1 || p.Tourn > 64 {
		return fmt.Errorf("search: genetic: pop/batch/tourn out of range: %+v", p)
	}
	if p.Mut < 0 || p.Mut > 1 || p.Cross < 0 || p.Cross > 1 {
		return fmt.Errorf("search: genetic: want mut, cx in [0, 1], got mut=%g cx=%g", p.Mut, p.Cross)
	}
	return nil
}
