package claire

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (each regenerates its artifact from scratch), plus the design-
// choice ablations listed in DESIGN.md: D1 utilization granularity, D2
// subset-formation threshold, D3 clustering algorithm, D4 latency-constraint
// slack, D5 analytical-vs-simulated systolic timing, D6 weight- vs
// output-stationary dataflow, D7 sequential vs pipelined layer execution.
//
// Run with: go test -bench=. -benchmem

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/dse"
	"repro/internal/eval"
	"repro/internal/hw"
	"repro/internal/jaccard"
	"repro/internal/metrics"
	"repro/internal/ppa"
	"repro/internal/report"
	"repro/internal/schedule"
	"repro/internal/systolic"
	"repro/internal/workload"
)

// --- Tables ---

func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := report.TableI(workload.TrainingSet())
		if len(s) == 0 {
			b.Fatal("empty table")
		}
	}
}

func benchTrain(b *testing.B) *core.TrainResult {
	b.Helper()
	tr, err := core.Train(workload.TrainingSet(), core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

func benchTest(b *testing.B, tr *core.TrainResult) *core.TestResult {
	b.Helper()
	tt, err := core.Test(tr, workload.TestSet(), core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	return tt
}

func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr := benchTrain(b)
		if len(report.TableII(tr)) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTableIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr := benchTrain(b)
		tt := benchTest(b, tr)
		if len(report.TableIII(tr, tt)) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTableIV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr := benchTrain(b)
		if len(report.TableIV(tr)) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTableV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr := benchTrain(b)
		tt := benchTest(b, tr)
		if len(report.TableV(tr, tt)) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTableVI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr := benchTrain(b)
		tt := benchTest(b, tr)
		if len(report.TableVI(tr, tt)) == 0 {
			b.Fatal("empty table")
		}
	}
}

// --- Figures ---

func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		data := report.Figure2Data(workload.TrainingSet(), 12)
		if data[0].Pair.String() != "LINEAR-LINEAR" {
			b.Fatalf("top edge = %s", data[0].Pair)
		}
	}
}

func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr := benchTrain(b)
		before, after := report.Figure3(tr)
		if len(before) == 0 || len(after) == 0 {
			b.Fatal("empty DOT output")
		}
	}
}

func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr := benchTrain(b)
		tt := benchTest(b, tr)
		if len(report.Figure4Data(tr, tt)) != 19 {
			b.Fatal("figure 4 incomplete")
		}
	}
}

// --- Pipeline stages (for profiling the framework itself) ---

func BenchmarkTrainingPhase(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchTrain(b)
	}
}

func BenchmarkTestPhase(b *testing.B) {
	tr := benchTrain(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchTest(b, tr)
	}
}

func BenchmarkDSESweep81Points(b *testing.B) {
	m := workload.NewResNet50()
	space := hw.Space()
	cons := dse.DefaultConstraints()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dse.Custom(m, space, cons); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Evaluation engine ---

// BenchmarkExplore measures the parallel DSE engine on the 13-model training
// set (13 x 81 = 1053 evaluations per exploration). The workers=1 and
// workers=N sub-benchmarks run with a cold cache each iteration, isolating
// the worker pool's wall-clock speedup; outputs are identical at any worker
// count (see TestExploreDeterministicAcrossWorkers). The warm-cache
// sub-benchmark shows what repeated sweeps (tau, slack, evolution) cost once
// the cache is populated, and reports the steady-state hit rate.
func BenchmarkExplore(b *testing.B) {
	models := workload.TrainingSet()
	space := hw.Space()
	cons := dse.DefaultConstraints()
	counts := []int{1}
	if n := runtime.NumCPU(); n > 1 {
		counts = append(counts, n)
	}
	for _, w := range counts {
		w := w
		b.Run(fmt.Sprintf("cold/workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ev := eval.New(eval.Options{Workers: w})
				if _, err := dse.Explore(models, space, cons, ev); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("warm-cache", func(b *testing.B) {
		ev := eval.New(eval.Options{})
		if _, err := dse.Explore(models, space, cons, ev); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := dse.Explore(models, space, cons, ev); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(100*ev.Stats().HitRate(), "hit%")
	})
}

// BenchmarkEvaluateBatch isolates the analytical model itself on a deep CNN:
// the direct path (folds and counts recomputed per call), the plan path
// (cached fold decompositions, full per-layer materialization) and the
// summary path (cached plans, scalar totals only, near-zero allocation).
func BenchmarkEvaluateBatch(b *testing.B) {
	m := workload.NewResNet50()
	c := hw.NewConfig(hw.Point{SASize: 32, NSA: 32, NAct: 16, NPool: 16},
		[]*workload.Model{m})
	b.Run("direct", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ppa.EvaluateBatch(m, c, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	plan := ppa.NewModelPlan(m)
	b.Run("plan-full", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := plan.EvaluateBatch(c, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("plan-summary", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := plan.Summary(c, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkExploreCold is the allocation-tracked acceptance benchmark of the
// layer-granular kernel refactor: a full cold-cache 13-model x 81-point
// exploration per iteration at Workers=1 (so ns/op and allocs/op are
// scheduling-noise-free). cmd/clairebench records the same measurement into
// BENCH_PR2.json for the cross-PR perf trajectory.
func BenchmarkExploreCold(b *testing.B) {
	models := workload.TrainingSet()
	space := hw.Space()
	cons := dse.DefaultConstraints()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev := eval.New(eval.Options{Workers: 1})
		if _, err := dse.Explore(models, space, cons, ev); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExploreColdParallel is the cold explore with the engine's default
// worker fan-out (GOMAXPROCS), so `go test -cpu 1,2,4` sweeps the sharded
// reduction across core counts — the CI parallel-scaling smoke.
func BenchmarkExploreColdParallel(b *testing.B) {
	models := workload.TrainingSet()
	space := hw.Space()
	cons := dse.DefaultConstraints()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev := eval.New(eval.Options{})
		if _, err := dse.Explore(models, space, cons, ev); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExploreStreamFine sweeps the 12k-point fine preset with the full
// training set through the streaming engine — the large-space mode whose
// naive per-point summary matrix the chunked sweep never materializes.
func BenchmarkExploreStreamFine(b *testing.B) {
	models := workload.TrainingSet()
	fine := hw.FineSpace()
	cons := dse.DefaultConstraints()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var stats dse.ExploreStats
		ev := eval.New(eval.Options{})
		if _, err := dse.ExploreSpace(models, fine, cons, ev, &dse.ExploreOptions{Stats: &stats}); err != nil {
			b.Fatal(err)
		}
		if stats.RetainedBytes*10 > stats.NaiveBytes {
			b.Fatalf("retained %d bytes exceeds 10%% of naive %d", stats.RetainedBytes, stats.NaiveBytes)
		}
	}
}

// BenchmarkTauSweepCached contrasts the tau sweep (which retrains the whole
// library per threshold) with and without a shared memoization cache — the
// core-layer payoff of the evaluation engine.
func BenchmarkTauSweepCached(b *testing.B) {
	taus := []float64{0.30, 0.42, 0.60, 0.80}
	models := workload.TrainingSet()
	b.Run("shared-cache", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.SweepTau(models, core.DefaultOptions(), taus); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cold-per-tau", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, tau := range taus {
				o := core.DefaultOptions()
				o.Similarity.Tau = tau
				if _, err := core.Train(models, o); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// --- Ablations ---

// BenchmarkAblationGranularity (D1): utilization at bank granularity vs
// instance-weighted granularity on the generic configuration.
func BenchmarkAblationGranularity(b *testing.B) {
	tr := benchTrain(b)
	banks := make([][]hw.Bank, len(tr.Generic.Chiplets))
	for i, c := range tr.Generic.Chiplets {
		banks[i] = c.Banks
	}
	units := tr.Generic.ChipletUnitSets()
	need := hw.UnitsFor(workload.NewBERTBase())
	b.ResetTimer()
	var bankU, instU float64
	for i := 0; i < b.N; i++ {
		bankU = metrics.Utilization(units, need)
		instU = metrics.WeightedUtilization(banks, need)
	}
	b.ReportMetric(bankU, "bank-utilization")
	b.ReportMetric(instU, "instance-utilization")
}

// BenchmarkAblationTau (D2): subset count as the similarity threshold sweeps.
func BenchmarkAblationTau(b *testing.B) {
	profiles := make([]jaccard.Profile, 0, 13)
	for _, m := range workload.TrainingSet() {
		profiles = append(profiles, jaccard.ProfileOfModel(m))
	}
	for _, tau := range []float64{0.30, 0.42, 0.60, 0.80} {
		tau := tau
		b.Run(fmt.Sprintf("tau=%.2f", tau), func(b *testing.B) {
			o := jaccard.DefaultOptions()
			o.Tau = tau
			var subsets int
			for i := 0; i < b.N; i++ {
				subsets = len(jaccard.Partition(profiles, o))
			}
			b.ReportMetric(float64(subsets), "subsets")
		})
	}
}

// BenchmarkAblationCluster (D3): Louvain vs greedy bipartition, reporting the
// CNN library's chiplet count.
func BenchmarkAblationCluster(b *testing.B) {
	for _, c := range []struct {
		name string
		fn   core.ClusterFunc
	}{
		{"louvain", core.LouvainCluster},
		{"greedy", core.GreedyCluster},
	} {
		c := c
		b.Run(c.name, func(b *testing.B) {
			o := core.DefaultOptions()
			o.Cluster = c.fn
			var chiplets int
			for i := 0; i < b.N; i++ {
				tr, err := core.Train(workload.TrainingSet(), o)
				if err != nil {
					b.Fatal(err)
				}
				chiplets = len(tr.Subsets[tr.SubsetOf("Resnet18")].Library.Chiplets)
			}
			b.ReportMetric(float64(chiplets), "cnn-chiplets")
		})
	}
}

// BenchmarkAblationSlack (D4): custom-configuration area as the latency
// constraint tightens.
func BenchmarkAblationSlack(b *testing.B) {
	m := workload.NewResNet50()
	space := hw.Space()
	for _, slack := range []float64{2.0, 1.0, 0.5} {
		slack := slack
		b.Run(fmt.Sprintf("slack=%.1f", slack), func(b *testing.B) {
			cons := dse.DefaultConstraints()
			cons.LatencySlack = slack
			var area float64
			for i := 0; i < b.N; i++ {
				r, err := dse.Custom(m, space, cons)
				if err != nil {
					b.Fatal(err)
				}
				area = r.Config.AreaMM2()
			}
			b.ReportMetric(area, "mm2")
		})
	}
}

// BenchmarkAblationDataflow (D6): weight-stationary vs output-stationary
// dataflow on a reuse-heavy convolution — cycles and operand movement.
func BenchmarkAblationDataflow(b *testing.B) {
	conv := workload.Layer{
		Kind: workload.Conv2d, NIFM: 64, NOFM: 64, KX: 3, KY: 3,
		OFMX: 56, OFMY: 56,
	}
	for _, df := range []string{"weight-stationary", "output-stationary"} {
		df := df
		b.Run(df, func(b *testing.B) {
			var cost systolic.DataflowCost
			for i := 0; i < b.N; i++ {
				ws, os := systolic.Compare(conv, 32, 32)
				if df == "weight-stationary" {
					cost = ws
				} else {
					cost = os
				}
			}
			b.ReportMetric(float64(cost.Cycles), "cycles")
			b.ReportMetric(float64(cost.Moved), "operands-moved")
		})
	}
}

// BenchmarkAblationPipelining (D7): the paper's sequential layer execution
// vs tile-grained pipelining across unit banks, on AlexNet's custom config.
func BenchmarkAblationPipelining(b *testing.B) {
	m := workload.NewAlexNet()
	cfg := hw.NewConfig(hw.Point{SASize: 32, NSA: 32, NAct: 16, NPool: 16},
		[]*workload.Model{m})
	e, err := ppa.Evaluate(m, cfg)
	if err != nil {
		b.Fatal(err)
	}
	chain := schedule.FromEval(e)
	for _, mode := range []struct {
		name   string
		chunks int
	}{{"sequential", 1}, {"pipelined-32", 32}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			var makespan float64
			for i := 0; i < b.N; i++ {
				ms, err := chain.Pipelined(mode.chunks)
				if err != nil {
					b.Fatal(err)
				}
				makespan = ms
			}
			b.ReportMetric(makespan*1e6, "makespan-us")
		})
	}
}

// BenchmarkAblationSystolicTiming (D5): PE-level simulated fold timing vs the
// analytical model, on a real convolution fold.
func BenchmarkAblationSystolicTiming(b *testing.B) {
	l := workload.Layer{
		Kind: workload.Conv2d, NIFM: 64, NOFM: 128, KX: 3, KY: 3, OFMX: 28, OFMY: 28,
	}
	plan := systolic.PlanLayer(l, 16)
	b.Run("analytical", func(b *testing.B) {
		var cycles int64
		for i := 0; i < b.N; i++ {
			cycles = plan.AnalyticalFoldCycles()
		}
		b.ReportMetric(float64(cycles), "cycles/fold")
	})
	b.Run("simulated", func(b *testing.B) {
		a, err := systolic.New(16)
		if err != nil {
			b.Fatal(err)
		}
		w := make([][]float64, 16)
		for r := range w {
			w[r] = make([]float64, 16)
		}
		if err := a.LoadWeights(w); err != nil {
			b.Fatal(err)
		}
		x := make([][]float64, plan.Streams)
		for t := range x {
			x[t] = make([]float64, 16)
		}
		b.ResetTimer()
		var cycles int64
		for i := 0; i < b.N; i++ {
			_, c, err := a.Stream(x)
			if err != nil {
				b.Fatal(err)
			}
			cycles = c + a.LoadCycles()
		}
		b.ReportMetric(float64(cycles), "cycles/fold")
	})
}

// BenchmarkAblationPrecision (D8): INT8 vs INT16 datapath on the ResNet-18
// custom configuration — area, energy and the resulting power density.
func BenchmarkAblationPrecision(b *testing.B) {
	m := workload.NewResNet18()
	for _, prec := range []hw.Precision{hw.Int8, hw.Int16} {
		prec := prec
		b.Run(prec.String(), func(b *testing.B) {
			c := hw.NewConfig(hw.Point{SASize: 32, NSA: 32, NAct: 16, NPool: 16},
				[]*workload.Model{m})
			c.Precision = prec
			var e *ppa.Eval
			for i := 0; i < b.N; i++ {
				var err error
				e, err = ppa.Evaluate(m, c)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(e.AreaMM2, "mm2")
			b.ReportMetric(e.EnergyPJ()*1e-9, "mJ")
			b.ReportMetric(e.PowerDensity(), "W/mm2")
		})
	}
}
