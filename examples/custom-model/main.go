// Custom-model: bring your own network to a trained chiplet library.
//
// This example hand-builds a MobileViT-style edge model (convolutional stem,
// depthwise blocks, then transformer blocks) out of claire.Layer values,
// trains the library on the paper's training set, and then treats the new
// network as a one-model test set: CLAIRE assigns it the most similar
// library configuration with full coverage and reports how the pre-designed
// chiplets compare with a bespoke ASIC for it.
package main

import (
	"fmt"
	"log"

	claire "repro"
)

// mobileViTStyle builds a small hybrid CNN/Transformer, the kind of workload
// that arrives after the chiplet library has already taped out.
func mobileViTStyle(act claire.OpKind) *claire.Model {
	m := &claire.Model{Name: "MobileViT-style", Class: "Transformer", SeqLen: 196}
	add := func(l claire.Layer) { m.Layers = append(m.Layers, l) }

	// Convolutional stem: 224x224x3 -> 28x28x96. The activation kind is a
	// parameter: ReLU keeps the model coverable by the transformer-class
	// library (which serves DPT's convolutional head), while ReLU6 makes it
	// uncoverable — demonstrating the library's coverage gate.
	shapes := []struct{ in, out, size, stride int }{
		{3, 16, 224, 2}, {16, 32, 112, 2}, {32, 64, 56, 2}, {64, 96, 28, 1},
	}
	for i, s := range shapes {
		o := s.size / s.stride
		add(claire.Layer{
			Kind: claire.Conv2d, Name: fmt.Sprintf("stem%d", i),
			IFMX: s.size, IFMY: s.size, NIFM: s.in,
			OFMX: o, OFMY: o, NOFM: s.out,
			KX: 3, KY: 3, Stride: s.stride, Pad: 1,
		})
		add(claire.Layer{
			Kind: act, Name: fmt.Sprintf("act%d", i),
			IFMX: o, IFMY: o, NIFM: s.out, OFMX: o, OFMY: o, NOFM: s.out,
		})
	}
	// Unfold patches into tokens.
	add(claire.Layer{
		Kind: claire.Flatten, Name: "unfold",
		IFMX: 28, IFMY: 28, NIFM: 96, OFMX: 196, OFMY: 1, NOFM: 384,
	})
	// Four transformer blocks at d=384.
	const d, ffn, seq = 384, 768, 196
	lin := func(name string, in, out int) {
		add(claire.Layer{
			Kind: claire.Linear, Name: name,
			IFMX: seq, IFMY: 1, NIFM: in, OFMX: seq, OFMY: 1, NOFM: out,
		})
	}
	for b := 0; b < 4; b++ {
		lin(fmt.Sprintf("q%d", b), d, d)
		lin(fmt.Sprintf("k%d", b), d, d)
		lin(fmt.Sprintf("v%d", b), d, d)
		lin(fmt.Sprintf("o%d", b), d, d)
		lin(fmt.Sprintf("fc1_%d", b), d, ffn)
		add(claire.Layer{
			Kind: claire.GELU, Name: fmt.Sprintf("gelu%d", b),
			IFMX: seq, IFMY: 1, NIFM: ffn, OFMX: seq, OFMY: 1, NOFM: ffn,
		})
		lin(fmt.Sprintf("fc2_%d", b), ffn, d)
	}
	// Classifier head.
	add(claire.Layer{
		Kind: claire.AdaptiveAvgPool, Name: "pool",
		IFMX: seq, IFMY: 1, NIFM: d, OFMX: 1, OFMY: 1, NOFM: d,
		KX: seq, KY: 1, Stride: seq,
	})
	add(claire.Layer{Kind: claire.Linear, Name: "head", IFMX: 1, IFMY: 1, NIFM: d, OFMX: 1, OFMY: 1, NOFM: 1000})
	return m
}

func main() {
	custom := mobileViTStyle(claire.ReLU)
	if err := custom.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d layers, %.1f M parameters, %.2f G MACs\n\n",
		custom.Name, custom.LayerCount(), float64(custom.Params())/1e6,
		float64(custom.MACs())/1e9)

	o := claire.DefaultOptions()
	tr, err := claire.Train(claire.TrainingSet(), o)
	if err != nil {
		log.Fatal(err)
	}
	tt, err := claire.Test(tr, []*claire.Model{custom}, o)
	if err != nil {
		log.Fatal(err)
	}

	a := tt.Assignments[0]
	if a.SubsetIndex < 0 {
		fmt.Println("no library configuration covers this model; a bespoke design is required")
		return
	}
	s := tr.Subsets[a.SubsetIndex]
	fmt.Printf("assigned configuration: %s (trained on %v), similarity %.2f\n",
		s.Name, s.Members, a.Similarity)
	fmt.Printf("coverage on %s: %.0f%%\n", s.Name, 100*a.OnLibrary.Coverage)
	fmt.Printf("chiplets reused: %d\n\n", len(s.Library.Chiplets))

	fmt.Println("library chiplets vs bespoke ASIC:")
	fmt.Printf("  NRE:     %.3f (library, already paid) vs %.3f (custom, new tapeout)\n",
		s.Library.NRE, a.Custom.NRE)
	fmt.Printf("  latency: %.3f ms (library) vs %.3f ms (custom)\n",
		a.OnLibrary.Total.LatencyS*1e3, a.Custom.PerModel[custom.Name].Total.LatencyS*1e3)
	fmt.Printf("  energy:  %.2f mJ (library) vs %.2f mJ (custom)\n",
		a.OnLibrary.Total.EnergyPJ*1e-9, a.Custom.PerModel[custom.Name].Total.EnergyPJ*1e-9)
	fmt.Printf("  area:    %.1f mm2 (library) vs %.1f mm2 (custom)\n",
		a.OnLibrary.Total.AreaMM2, a.Custom.PerModel[custom.Name].Total.AreaMM2)

	// The coverage gate: the same model with ReLU6 stages needs a unit no
	// transformer-class chiplet provides, so it cannot be assigned.
	uncovered := mobileViTStyle(claire.ReLU6)
	uncovered.Name = "MobileViT-style-ReLU6"
	tt2, err := claire.Test(tr, []*claire.Model{uncovered}, o)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if tt2.Assignments[0].SubsetIndex < 0 {
		fmt.Printf("%s: no library configuration reaches 100%% coverage; ", uncovered.Name)
		fmt.Println("CLAIRE falls back to a bespoke tape-out, as the paper notes for unassigned cases")
	} else {
		fmt.Printf("%s unexpectedly assigned to %s\n", uncovered.Name,
			tr.Subsets[tt2.Assignments[0].SubsetIndex].Name)
	}
}
