// Library-evolution: the time-to-market workflow the paper motivates.
//
// A chiplet library is trained once on today's algorithms. Tomorrow's
// algorithms then arrive one by one: most ride the hardened configurations
// immediately (zero new silicon NRE, pre-verified dies), and only genuinely
// new unit mixes trigger a fresh tape-out. The example also walks the GPT-2
// and Llama-3 size ladders to show that scaling a served architecture stays
// on its configuration — the "composable, scalable, reusable" claim.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	claire "repro"
	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	o := core.DefaultOptions()
	tr, err := core.Train(workload.TrainingSet(), o)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("library trained: %d configurations over %d algorithms\n\n",
		len(tr.Subsets), len(tr.Models))

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Arriving algorithm\tOutcome\tConfig\tAdded NRE\tLatency (ms)")
	arrivals := []*claire.Model{
		workload.NewRoBERTaBase(),    // BERT family: reuse
		workload.NewConvNeXtTiny(),   // GELU CNN: reuse (transformer config)
		workload.NewT5Base(),         // ReLU Transformer: reuse
		workload.NewEfficientNetB0(), // SiLU CNN: new configuration needed
		workload.NewCLIPViTB32(),     // two-tower ViT: reuse
	}
	for _, m := range arrivals {
		out, err := tr.Extend(m, o)
		if err != nil {
			log.Fatal(err)
		}
		outcome := "reused hardened chiplets"
		if !out.Reused {
			outcome = "NEW configuration synthesized"
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%.3f\t%.3f\n",
			m.Name, outcome, tr.Subsets[out.SubsetIndex].Name,
			out.AddedNRE, out.PPA.Total.LatencyS*1e3)
	}
	w.Flush()
	fmt.Printf("\nlibrary now holds %d configurations\n\n", len(tr.Subsets))

	// Scaling ladders: same kinds, growing capacity — same configuration.
	fmt.Fprintln(w, "Scaled variant\tParams\tOutcome\tConfig\tLatency (ms)")
	for _, spec := range workload.GPT2Specs()[1:] {
		report(w, tr, o, workload.NewGPT2Sized(spec))
	}
	report(w, tr, o, workload.NewLlama(workload.Llama3Specs()[1]))
	w.Flush()
}

func report(w *tabwriter.Writer, tr *core.TrainResult, o core.Options, m *claire.Model) {
	out, err := tr.Extend(m, o)
	if err != nil {
		log.Fatal(err)
	}
	outcome := "reused"
	if !out.Reused {
		outcome = "new config"
	}
	fmt.Fprintf(w, "%s\t%.1f B\t%s\t%s\t%.3f\n",
		m.Name, float64(m.Params())/1e9, outcome,
		tr.Subsets[out.SubsetIndex].Name, out.PPA.Total.LatencyS*1e3)
}
