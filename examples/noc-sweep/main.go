// NoC-sweep: interconnect sensitivity study.
//
// The paper fixes the NoP to one AIB 2.0 channel with NoC-matched bandwidth
// so the two networks compare fairly. This example sweeps (a) the NoP
// per-byte energy (package-technology quality: organic substrate vs silicon
// bridge vs 3-D) and (b) the channel bandwidth, and reports the impact on a
// communication-heavy test algorithm running on its library configuration —
// quantifying how much headroom the clustering step's NoP-traffic
// minimization actually buys.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	claire "repro"
	"repro/internal/workload"
)

func main() {
	base := claire.DefaultOptions()
	tr, err := claire.Train(claire.TrainingSet(), base)
	if err != nil {
		log.Fatal(err)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)

	fmt.Println("=== NoP energy-per-byte sweep (package technology) ===")
	fmt.Fprintln(w, "NoP pJ/B\tTechnology\tViT latency (ms)\tViT energy (mJ)\tNoP share of energy")
	techs := []struct {
		pjPerByte float64
		label     string
	}{
		{0.6, "3D hybrid bond"},
		{2.0, "AIB 2.0 (paper)"},
		{6.0, "organic substrate"},
		{12.0, "long-reach SerDes"},
	}
	vit := workload.NewViTBase()
	for _, tech := range techs {
		o := base
		o.NoP.LinkPJPerByte = tech.pjPerByte
		tt, err := claire.Test(tr, []*claire.Model{vit}, o)
		if err != nil {
			log.Fatal(err)
		}
		a := tt.Assignments[0]
		if a.OnLibrary == nil {
			log.Fatal("ViT unassigned")
		}
		share := a.OnLibrary.NoPEnergyPJ / a.OnLibrary.Total.EnergyPJ
		fmt.Fprintf(w, "%.1f\t%s\t%.3f\t%.2f\t%.2f%%\n",
			tech.pjPerByte, tech.label,
			a.OnLibrary.Total.LatencyS*1e3, a.OnLibrary.Total.EnergyPJ*1e-9, 100*share)
	}
	w.Flush()

	fmt.Println("\n=== Channel bandwidth sweep (links per channel) ===")
	fmt.Fprintln(w, "Links\tBandwidth\tDETR latency (ms)\tinterconnect latency share")
	detr := workload.NewDETR()
	for _, links := range []int{10, 20, 40, 80} {
		o := base
		o.NoC.LinksPerChannel = links
		o.NoP.LinksPerChannel = links // matched bandwidth, as in the paper
		tt, err := claire.Test(tr, []*claire.Model{detr}, o)
		if err != nil {
			log.Fatal(err)
		}
		a := tt.Assignments[0]
		icLat := a.OnLibrary.NoCLatencyS + a.OnLibrary.NoPLatencyS
		fmt.Fprintf(w, "%d\t%.0f GB/s\t%.3f\t%.2f%%\n",
			links, o.NoC.BandwidthBytesPerSec()/1e9,
			a.OnLibrary.Total.LatencyS*1e3, 100*icLat/a.OnLibrary.Total.LatencyS)
	}
	w.Flush()

	fmt.Println("\n=== Clustering quality: NoP traffic under Louvain vs greedy ===")
	fmt.Fprintln(w, "Clustering\tCNN-library chiplets\tResnet50 NoP energy (uJ)\tResnet50 NoC energy (uJ)")
	for _, c := range []struct {
		name    string
		cluster claire.ClusterFunc
	}{
		{"louvain", claire.LouvainCluster},
		{"greedy", claire.GreedyCluster},
	} {
		o := base
		o.Cluster = c.cluster
		tr2, err := claire.Train(claire.TrainingSet(), o)
		if err != nil {
			log.Fatal(err)
		}
		k := tr2.SubsetOf("Resnet50")
		mp := tr2.Subsets[k].Library.PerModel["Resnet50"]
		fmt.Fprintf(w, "%s\t%d\t%.2f\t%.2f\n", c.name,
			len(tr2.Subsets[k].Library.Chiplets), mp.NoPEnergyPJ*1e-6, mp.NoCEnergyPJ*1e-6)
	}
	w.Flush()
}
