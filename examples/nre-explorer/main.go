// NRE-explorer: cost-model studies behind the paper's headline numbers.
//
// Three analyses using the Chiplet Actuary-style model:
//  1. the "area wall" — known-good-die cost of one big monolith vs the same
//     silicon as chiplets;
//  2. how many algorithms a library configuration must serve before it beats
//     bespoke chips on total one-time cost;
//  3. total cost of ownership (NRE amortized over volume + recurring die
//     cost): the volume at which a cheap-to-design library system overtakes
//     a leaner custom die.
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/cost"
)

func main() {
	m := cost.Default()
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)

	fmt.Println("=== 1. The area wall: one monolith vs chiplets (same total silicon) ===")
	fmt.Fprintln(w, "Total silicon (mm2)\tMonolith $/KGD\tYield\t4 chiplets $/system\tYield/die\tChiplet saving")
	for _, total := range []float64{100, 200, 400, 600, 800} {
		mono := m.DieREUSD(total)
		per := total / 4
		chipletSys := m.SystemREUSD([]float64{per, per, per, per})
		fmt.Fprintf(w, "%.0f\t$%.1f\t%.1f%%\t$%.1f\t%.1f%%\t%.2fx\n",
			total, mono, 100*m.DieYield(total), chipletSys, 100*m.DieYield(per),
			mono/chipletSys)
	}
	w.Flush()

	fmt.Println("\n=== 2. Library break-even: algorithms served vs bespoke tape-outs ===")
	libCfg := cost.Config{ // a two-chiplet library configuration (C1-like)
		Types: []cost.Chiplet{
			{AreaMM2: 49, UnitKinds: 6},
			{AreaMM2: 1, UnitKinds: 3},
		},
		Instances: 2,
	}
	bespoke := cost.Config{ // one bespoke CNN accelerator
		Types:     []cost.Chiplet{{AreaMM2: 25, UnitKinds: 4}},
		Instances: 1,
	}
	libNRE := m.ConfigNREUSD(libCfg)
	perAlgo := m.ConfigNREUSD(bespoke)
	fmt.Fprintln(w, "Algorithms\tBespoke total\tLibrary (paid once)\tBenefit")
	for n := 1; n <= 8; n++ {
		total := float64(n) * perAlgo
		fmt.Fprintf(w, "%d\t$%.1fM\t$%.1fM\t%.2fx\n",
			n, total/1e6, libNRE/1e6, total/libNRE)
	}
	w.Flush()
	fmt.Println("(the paper's 1.99x-3.99x NRE benefits are exactly this effect at n=2..4)")

	fmt.Println("\n=== 3. Total cost of ownership vs volume ===")
	libDieRE := m.SystemREUSD([]float64{49, 1})
	customDieRE := m.SystemREUSD([]float64{25})
	fmt.Fprintln(w, "Volume\tLibrary $/unit (NRE amortized)\tBespoke $/unit\tCheaper")
	crossover := -1
	for _, vol := range []int{1e3, 1e4, 1e5, 1e6, 1e7} {
		lib := libNRE/float64(vol) + libDieRE
		cus := perAlgo/float64(vol) + customDieRE
		who := "library"
		if cus < lib {
			who = "bespoke"
			if crossover < 0 {
				crossover = vol
			}
		}
		fmt.Fprintf(w, "%d\t$%.2f\t$%.2f\t%s\n", vol, lib, cus, who)
	}
	w.Flush()
	if crossover > 0 {
		fmt.Printf("bespoke silicon only wins above ~%d units: below that, reuse dominates\n", crossover)
	} else {
		fmt.Println("the library configuration wins at every surveyed volume")
	}
}
