// Volume-planner: deployment economics on top of the trained library.
//
// The paper's NRE benefit is volume-free; a deployment decision is not. This
// example trains the library, then asks: given production volumes for each
// test algorithm, who should ride the shared chiplets and who should tape
// out bespoke silicon? The planner pools the library NRE across its users
// and accounts for recurring known-good-die costs, so high-volume products
// can rationally defect to leaner custom dies.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/workload"
)

func main() {
	o := core.DefaultOptions()
	tr, err := core.Train(workload.TrainingSet(), o)
	if err != nil {
		log.Fatal(err)
	}
	tt, err := core.Test(tr, workload.TestSet(), o)
	if err != nil {
		log.Fatal(err)
	}

	// Use the transformer-class library configuration shared by the four
	// transformer test algorithms' subsets (pick the ViT-family one).
	vitIdx := -1
	for _, a := range tt.Assignments {
		if a.Algorithm == "ViT-base" {
			vitIdx = a.SubsetIndex
		}
	}
	if vitIdx < 0 {
		log.Fatal("ViT unassigned")
	}
	lib := tr.Subsets[vitIdx].Library
	libPlan := cost.LibraryPlan{Config: costConfig(lib), Dies: dieAreas(lib)}

	volumes := map[string]int64{
		"BERT-base":  50_000,
		"Graphormer": 5_000,
		"ViT-base":   400_000,
		"AST":        20_000,
		"DETR":       150_000,
		"Alexnet":    2_000_000_000, // an extreme-volume embedded deployment
	}
	var cands []cost.Candidate
	for _, a := range tt.Assignments {
		cands = append(cands, cost.Candidate{
			Name:       a.Algorithm,
			Volume:     volumes[a.Algorithm],
			Custom:     costConfig(a.Custom),
			CustomDies: dieAreas(a.Custom),
		})
	}

	res, err := o.Cost.Plan(libPlan, cands)
	if err != nil {
		log.Fatal(err)
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Algorithm\tVolume\tCustom TCO\tLibrary TCO\tDecision")
	for i, d := range res.Decisions {
		pick := "custom tape-out"
		if d.UseLibrary {
			pick = "shared library"
		}
		fmt.Fprintf(w, "%s\t%d\t$%.1fM\t$%.1fM\t%s\n",
			d.Name, cands[i].Volume, d.CustomTCO/1e6, d.LibraryTCO/1e6, pick)
	}
	w.Flush()
	fmt.Printf("\nlibrary NRE (paid once if used): $%.1fM; used: %v\n",
		res.LibraryNREUSD/1e6, res.LibraryUsed)
	fmt.Printf("plan total $%.1fM vs all-custom $%.1fM -> %.2fx saving\n",
		res.TotalUSD/1e6, res.AllCustomUSD/1e6, res.Savings())
}

// costConfig converts a design point into the cost model's view: distinct
// chiplet types plus instance count.
func costConfig(d *core.DesignPoint) cost.Config {
	types := make(map[string]cost.Chiplet)
	for _, c := range d.Chiplets {
		types[c.Signature()] = cost.Chiplet{AreaMM2: c.AreaMM2, UnitKinds: len(c.Banks)}
	}
	cc := cost.Config{Instances: len(d.Chiplets)}
	for _, t := range types {
		cc.Types = append(cc.Types, t)
	}
	return cc
}

func dieAreas(d *core.DesignPoint) []float64 {
	out := make([]float64, len(d.Chiplets))
	for i, c := range d.Chiplets {
		out[i] = c.AreaMM2
	}
	return out
}
