// Quickstart: run the full CLAIRE pipeline on the paper's training and test
// sets and print the headline results — the library-synthesized chiplet
// configurations, their NRE benefit over custom designs, and the utilization
// improvement over the generic configuration.
package main

import (
	"fmt"
	"log"
	"strings"

	claire "repro"
)

func main() {
	res, err := claire.Run(claire.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("training converged in %v\n\n", res.Train.Elapsed)

	fmt.Println("library-synthesized configurations:")
	for _, s := range res.Train.Subsets {
		fmt.Printf("  %s serves {%s} with %d chiplet(s), NRE %.2f of generic\n",
			s.Name, strings.Join(s.Members, ", "), len(s.Library.Chiplets), s.Library.NRE)
	}

	fmt.Println("\ntraining-phase NRE benefit (custom sum vs library):")
	for _, s := range res.Train.Subsets {
		if len(s.Members) < 2 {
			continue
		}
		cum, lib, ben := s.NREBenefit(res.Train.Customs)
		fmt.Printf("  %s: %.3f vs %.3f  ->  %.2fx cheaper\n", s.Name, cum, lib, ben)
	}

	fmt.Println("\ntest-phase assignment and utilization:")
	for _, a := range res.Test.Assignments {
		if a.SubsetIndex < 0 {
			fmt.Printf("  %-12s unassigned\n", a.Algorithm)
			continue
		}
		s := res.Train.Subsets[a.SubsetIndex]
		fmt.Printf("  %-12s -> %s  coverage %.0f%%  utilization %.2f (generic: %.2f)\n",
			a.Algorithm, s.Name, 100*a.OnLibrary.Coverage,
			a.OnLibrary.Utilization, a.OnGeneric.Utilization)
	}
}
